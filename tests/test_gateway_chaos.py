"""Chaos: the open-loop loadgen under replica crash/rejoin churn.

The gateway's headline durability claim -- an acknowledged write is
ordered exactly once, group-wide -- is cheap to state on a healthy
group.  This test asserts it while a replica crashes mid-load and
rejoins through the recovery path: every ``ok``-acked write's broadcast
id must appear exactly once in the replicas' applied log, and none may
vanish.  The audit hook rides ``on_applied`` (installed *before* the
gateway chains its own), because the recovery layer trims the RSM's
applied window -- reading state at the end would miss early commands.
"""

import asyncio

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.gateway.loadgen import ChurnPlan, chaos_profile, run_load_with_churn
from repro.gateway.server import ClientGateway, GatewayServices
from repro.recovery import PHASE_LIVE, RecoveryManager
from repro.transport.tcp import PeerAddress, RitasNode

N = 4
INTERVAL = 16
TICK_S = 0.02
CHURN_REPLICA = 3


async def _wait(predicate, timeout_s, what):
    for _ in range(int(timeout_s / 0.02)):
        if predicate():
            return
        await asyncio.sleep(0.02)
    raise TimeoutError(f"timed out waiting for {what}")


def test_no_acked_write_lost_or_duplicated_under_churn():
    config = GroupConfig(N, checkpoint_interval=INTERVAL)
    dealer = TrustedDealer(N, seed=b"gateway-chaos")

    async def scenario():
        blank = [PeerAddress("127.0.0.1", 0)] * N
        nodes = [
            RitasNode(
                config, pid, blank, dealer.keystore_for(pid), connect_retry_s=0.05
            )
            for pid in range(N)
        ]
        for node in nodes:
            await node.listen()
        addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
        for node in nodes:
            node.set_peer_addresses(addresses)
        for node in nodes:
            await node.connect()
        services = [GatewayServices.attach(node) for node in nodes]
        # Recovery managers from the start: the live replicas must hold
        # checkpoint certificates for the joiner to bootstrap from.
        managers = [
            RecoveryManager(node.stack, service.kv.rsm)
            for node, service in zip(nodes, services)
        ]
        for node, manager in zip(nodes, managers):
            node.add_ticker(TICK_S, manager.poke)

        # The audit trail: every applied command's broadcast id, in
        # apply order, on a replica that never crashes.  Installed
        # before the gateway so the gateway chains it.
        applied: list[tuple[int, int]] = []
        services[0].kv.rsm.on_applied = (
            lambda delivery, command, result: applied.append(delivery.msg_id)
        )

        gateway = ClientGateway(nodes[0], services[0])
        port = await gateway.listen()

        async def crash(replica: int) -> None:
            await nodes[replica].close()

        async def restart(replica: int) -> None:
            node = RitasNode(
                config,
                replica,
                addresses,
                dealer.keystore_for(replica),
                connect_retry_s=0.05,
            )
            await node.listen()
            assert node.bound_port == addresses[replica].port
            await node.connect()
            services[replica] = GatewayServices.attach(node)
            managers[replica] = RecoveryManager(
                node.stack, services[replica].kv.rsm, recovering=True
            )
            node.add_ticker(TICK_S, managers[replica].poke)
            nodes[replica] = node

        try:
            report = await run_load_with_churn(
                "127.0.0.1",
                port,
                chaos_profile(seed=7),
                plan=ChurnPlan.crash_restart(
                    CHURN_REPLICA, crash_at=0.15, restart_at=0.6
                ),
                crash=crash,
                restart=restart,
            )

            # The load produced acked writes, and the churn landed
            # inside the run (the joiner went through recovery).
            assert report.ok > 0
            assert report.acked_ids
            await _wait(
                lambda: managers[CHURN_REPLICA].phase == PHASE_LIVE,
                60,
                "churn replica rejoin",
            )
            assert managers[CHURN_REPLICA].stats.snapshots_installed >= 1

            # Durability audit: no acked write lost, none applied twice.
            assert len(applied) == len(set(applied)), "duplicate apply"
            missing = set(report.acked_ids) - set(applied)
            assert not missing, f"acked writes never applied: {missing}"
            assert len(report.acked_ids) == len(set(report.acked_ids))

            # And the group converges to one digest including the joiner.
            await _wait(
                lambda: len({s.kv.state_digest() for s in services}) == 1,
                60,
                "post-churn digest convergence",
            )
        finally:
            await gateway.close()
            for node in nodes:
                await node.close()

    asyncio.run(scenario())
