"""Atomic broadcast when an agreement lands on ⊥ (the retry path).

The paper's Byzantine analysis: if the attack at the MVC layer *had*
succeeded, "correct processes ... would have to start a new agreement
round".  The attack never wins from within f, so we force the path with
a test double: every stack's *first* MVC instance decides ⊥
immediately; later instances are honest.  The burst must still be
delivered -- one round later -- with order agreement intact.
"""

from repro.core.multivalued_consensus import MultiValuedConsensus
from repro.core.stack import ProtocolFactory

from util import InstantNet, ShuffleNet


def bottom_once_factory():
    """Factory whose first created MVC (per stack) decides ⊥ at once."""

    class BottomOnceMvc(MultiValuedConsensus):
        fired_stacks: set[int] = set()

        def propose(self, value):
            if self.me not in BottomOnceMvc.fired_stacks:
                BottomOnceMvc.fired_stacks.add(self.me)
                self._decide(None)
                return
            super().propose(value)

    return ProtocolFactory.default().override("mvc", BottomOnceMvc), BottomOnceMvc


def test_bottom_agreement_retries_and_delivers():
    factory, cls = bottom_once_factory()
    net = InstantNet(4, factories={pid: factory for pid in range(4)})
    orders = {}
    for pid, stack in enumerate(net.stacks):
        ab = stack.create("ab", ("a",))
        orders[pid] = []
        ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
    for pid in range(4):
        net.stacks[pid].instance_at(("a",)).broadcast(b"m%d" % pid)
    net.run()
    reference = orders[0]
    assert len(reference) == 4
    assert all(order == reference for order in orders.values())
    ab0 = net.stacks[0].instance_at(("a",))
    assert ab0.agreements_empty >= 1  # the forced ⊥ registered
    assert ab0.round >= 2  # and cost an extra agreement round


def test_bottom_agreement_on_shuffles():
    for seed in range(6):
        factory, cls = bottom_once_factory()
        net = ShuffleNet(4, seed=seed, factories={pid: factory for pid in range(4)})
        orders = {}
        for pid, stack in enumerate(net.stacks):
            ab = stack.create("ab", ("a",))
            orders[pid] = []
            ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
        for pid in range(4):
            net.stacks[pid].instance_at(("a",)).broadcast(b"s%d" % pid)
        net.run()
        reference = orders[0]
        assert len(reference) == 4, f"seed {seed}"
        assert all(order == reference for order in orders.values()), f"seed {seed}"
