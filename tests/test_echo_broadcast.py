"""Matrix echo broadcast: MAC vectors, matrix assembly, delivery rules."""

import pytest

from repro.core.config import GroupConfig
from repro.core.echo_broadcast import MSG_INIT, MSG_MAT, MSG_VECT
from repro.core.errors import ProtocolViolationError
from repro.core.stack import Stack
from repro.core.wire import decode_frame, encode_frame, encode_value
from repro.crypto.hashing import HASH_LEN
from repro.crypto.keys import TrustedDealer
from repro.crypto.mac import mac

from util import InstantNet, ShuffleNet


def lone_stack(pid, dealer):
    sent = []
    stack = Stack(
        GroupConfig(4),
        pid,
        outbox=lambda d, b: sent.append((d, b)),
        keystore=dealer.keystore_for(pid),
    )
    return stack, sent


@pytest.fixture
def dealer():
    return TrustedDealer(4, seed=b"eb-tests")


class TestReceiverSide:
    def test_init_triggers_vect_to_sender_only(self, dealer):
        stack, sent = lone_stack(1, dealer)
        stack.create("eb", ("e",), sender=0)
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"m"))
        assert len(sent) == 1
        dest, data = sent[0]
        assert dest == 0
        _, mtype, vector = decode_frame(data)
        assert mtype == MSG_VECT
        assert len(vector) == 4
        # Entry j is H(m, s_1j).
        encoded = encode_value(b"m")
        for j in range(4):
            assert vector[j] == mac(encoded, dealer.pair_key(1, j))

    def test_valid_column_delivers(self, dealer):
        stack, _ = lone_stack(1, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        delivered = []
        eb.on_deliver = lambda _i, v: delivered.append(v)
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"m"))
        encoded = encode_value(b"m")
        column = [[i, mac(encoded, dealer.pair_key(i, 1))] for i in (0, 2, 3)]
        stack.receive(0, encode_frame(("e",), MSG_MAT, column))
        assert delivered == [b"m"]

    def test_f_plus_one_valid_hashes_suffice(self, dealer):
        stack, _ = lone_stack(1, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        delivered = []
        eb.on_deliver = lambda _i, v: delivered.append(v)
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"m"))
        encoded = encode_value(b"m")
        column = [
            [0, mac(encoded, dealer.pair_key(0, 1))],
            [2, mac(encoded, dealer.pair_key(2, 1))],
            [3, b"\x00" * HASH_LEN],  # one bogus row
        ]
        stack.receive(0, encode_frame(("e",), MSG_MAT, column))
        assert delivered == [b"m"]

    def test_too_few_valid_hashes_no_delivery(self, dealer):
        stack, _ = lone_stack(1, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        delivered = []
        eb.on_deliver = lambda _i, v: delivered.append(v)
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"m"))
        encoded = encode_value(b"m")
        column = [
            [0, mac(encoded, dealer.pair_key(0, 1))],
            [2, b"\x00" * HASH_LEN],
            [3, b"\x00" * HASH_LEN],
        ]
        stack.receive(0, encode_frame(("e",), MSG_MAT, column))
        assert delivered == []

    def test_column_for_wrong_message_rejected(self, dealer):
        """MACs bind the column to the INIT payload."""
        stack, _ = lone_stack(1, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        delivered = []
        eb.on_deliver = lambda _i, v: delivered.append(v)
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"real"))
        encoded_other = encode_value(b"forged")
        column = [[i, mac(encoded_other, dealer.pair_key(i, 1))] for i in (0, 2, 3)]
        stack.receive(0, encode_frame(("e",), MSG_MAT, column))
        assert delivered == []

    def test_duplicate_row_indices_rejected(self, dealer):
        stack, _ = lone_stack(1, dealer)
        stack.create("eb", ("e",), sender=0)
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"m"))
        encoded = encode_value(b"m")
        tag = mac(encoded, dealer.pair_key(0, 1))
        column = [[0, tag], [0, tag], [0, tag]]
        stack.receive(0, encode_frame(("e",), MSG_MAT, column))
        assert stack.stats.dropped["protocol-violation"] == 1

    def test_mat_before_init_held_until_init(self, dealer):
        stack, _ = lone_stack(1, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        delivered = []
        eb.on_deliver = lambda _i, v: delivered.append(v)
        encoded = encode_value(b"m")
        column = [[i, mac(encoded, dealer.pair_key(i, 1))] for i in (0, 2, 3)]
        stack.receive(0, encode_frame(("e",), MSG_MAT, column))
        assert delivered == []
        stack.receive(0, encode_frame(("e",), MSG_INIT, b"m"))
        assert delivered == [b"m"]

    def test_init_from_non_sender_rejected(self, dealer):
        stack, sent = lone_stack(1, dealer)
        stack.create("eb", ("e",), sender=0)
        stack.receive(2, encode_frame(("e",), MSG_INIT, b"m"))
        assert sent == []
        assert stack.stats.dropped["protocol-violation"] == 1

    def test_broadcast_by_non_sender_rejected(self, dealer):
        stack, _ = lone_stack(1, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        with pytest.raises(ProtocolViolationError):
            eb.broadcast(b"nope")


class TestSenderSide:
    def test_sender_builds_matrix_after_quorum(self, dealer):
        stack, sent = lone_stack(0, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        eb.broadcast(b"m")
        init_frames = len(sent)
        assert init_frames == 4
        encoded = encode_value(b"m")
        # Two peer vectors + the sender's own (delivered via loopback in a
        # real run; feed all three manually here).
        for peer in (0, 1, 2):
            vector = [mac(encoded, dealer.pair_key(peer, j)) for j in range(4)]
            stack.receive(peer, encode_frame(("e",), MSG_VECT, vector))
        mats = sent[init_frames:]
        assert len(mats) == 4
        # Column j goes to process j and contains rows (0, 1, 2).
        for j, (dest, data) in enumerate(mats):
            assert dest == j
            _, mtype, column = decode_frame(data)
            assert mtype == MSG_MAT
            assert [row for row, _tag in column] == [0, 1, 2]
            for row, tag in column:
                assert tag == mac(encoded, dealer.pair_key(row, j))

    def test_malformed_vector_rejected(self, dealer):
        stack, sent = lone_stack(0, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        eb.broadcast(b"m")
        stack.receive(1, encode_frame(("e",), MSG_VECT, [b"short"]))
        assert stack.stats.dropped["protocol-violation"] == 1

    def test_duplicate_vectors_counted_once(self, dealer):
        stack, sent = lone_stack(0, dealer)
        eb = stack.create("eb", ("e",), sender=0)
        eb.broadcast(b"m")
        before = len(sent)
        encoded = encode_value(b"m")
        vector = [mac(encoded, dealer.pair_key(1, j)) for j in range(4)]
        stack.receive(1, encode_frame(("e",), MSG_VECT, vector))
        stack.receive(1, encode_frame(("e",), MSG_VECT, vector))
        assert len(sent) == before  # still waiting for a third distinct row


class TestEndToEnd:
    def test_all_deliver_from_correct_sender(self):
        net = InstantNet(4)
        got = {}
        for pid, stack in enumerate(net.stacks):
            eb = stack.create("eb", ("e",), sender=3)
            eb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.stacks[3].instance_at(("e",)).broadcast(b"payload")
        net.run()
        assert got == {pid: b"payload" for pid in range(4)}

    def test_shuffled_schedules(self):
        for seed in range(10):
            net = ShuffleNet(4, seed=seed)
            got = {}
            for pid, stack in enumerate(net.stacks):
                eb = stack.create("eb", ("e",), sender=0)
                eb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
            net.stacks[0].instance_at(("e",)).broadcast(b"p")
            net.run()
            assert got == {pid: b"p" for pid in range(4)}, f"seed {seed}"

    def test_corrupt_sender_deliverers_agree(self):
        """A corrupt sender can split delivery but never its content:
        all correct processes that deliver, deliver the same message."""
        from repro.crypto.mac import mac as mk_mac

        for seed in range(6):
            net = ShuffleNet(4, seed=seed)
            got = {}
            for pid in range(1, 4):
                eb = net.stacks[pid].create("eb", ("e",), sender=0)
                eb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
            # Byzantine p0: INIT m1 to p1/p2, INIT m2 to p3; then gathers
            # vectors and sends whatever columns it can assemble.
            net.stacks[0].send_frame(1, ("e",), MSG_INIT, b"m1")
            net.stacks[0].send_frame(2, ("e",), MSG_INIT, b"m1")
            net.stacks[0].send_frame(3, ("e",), MSG_INIT, b"m2")
            net.run()
            # Honest receivers replied with VECTs for the m they saw; the
            # attacker cannot mix them into an f+1-valid column for both
            # messages, because only one vector ever covers m2.
            values = set(got.values())
            assert len(values) <= 1, f"seed {seed}: split delivery {got}"

    def test_larger_group(self):
        net = InstantNet(7)
        got = {}
        for pid, stack in enumerate(net.stacks):
            eb = stack.create("eb", ("e",), sender=0)
            eb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
        net.stacks[0].instance_at(("e",)).broadcast(b"seven")
        net.run()
        assert len(got) == 7

    def test_message_cheaper_than_rb(self):
        """The whole point of echo broadcast: fewer frames than RB."""
        net_eb = InstantNet(4)
        for pid, stack in enumerate(net_eb.stacks):
            stack.create("eb", ("e",), sender=0)
        net_eb.stacks[0].instance_at(("e",)).broadcast(b"m")
        eb_frames = net_eb.run()

        net_rb = InstantNet(4)
        for pid, stack in enumerate(net_rb.stacks):
            stack.create("rb", ("r",), sender=0)
        net_rb.stacks[0].instance_at(("r",)).broadcast(b"m")
        rb_frames = net_rb.run()
        assert eb_frames < rb_frames
