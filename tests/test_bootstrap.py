"""Deployment bootstrap: descriptors, key provisioning, node shell."""

import json

import pytest

from repro.apps.kv_store import ReplicatedKvStore
from repro.apps.node_cli import NodeShell
from repro.transport.bootstrap import (
    load_session_config,
    main as keygen_main,
    provision,
    read_group_descriptor,
    read_keystore,
    write_group_descriptor,
)
from repro.transport.tcp import PeerAddress

from util import InstantNet


@pytest.fixture
def descriptor(tmp_path):
    path = tmp_path / "group.json"
    addresses = [PeerAddress("10.0.0.%d" % (i + 1), 4800 + i) for i in range(4)]
    write_group_descriptor(path, addresses)
    return path, addresses


class TestDescriptor:
    def test_roundtrip(self, descriptor):
        path, addresses = descriptor
        assert read_group_descriptor(path) == addresses

    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ValueError, match="JSON"):
            read_group_descriptor(path)

    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text(json.dumps({"version": 9, "processes": []}))
        with pytest.raises(ValueError, match="version"):
            read_group_descriptor(path)

    def test_rejects_empty_group(self, tmp_path):
        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"version": 1, "processes": []}))
        with pytest.raises(ValueError, match="no processes"):
            read_group_descriptor(path)

    def test_rejects_bad_port(self, tmp_path):
        path = tmp_path / "port.json"
        path.write_text(
            json.dumps(
                {"version": 1, "processes": [{"host": "h", "port": 99999}]}
            )
        )
        with pytest.raises(ValueError, match="malformed"):
            read_group_descriptor(path)


class TestProvision:
    def test_writes_one_key_file_per_process(self, descriptor, tmp_path):
        path, _ = descriptor
        written = provision(path, tmp_path / "keys", seed=b"t")
        assert len(written) == 4
        assert all(p.exists() for p in written)

    def test_key_files_are_private(self, descriptor, tmp_path):
        path, _ = descriptor
        written = provision(path, tmp_path / "keys", seed=b"t")
        assert written[0].stat().st_mode & 0o777 == 0o600

    def test_pairwise_keys_match_across_files(self, descriptor, tmp_path):
        path, _ = descriptor
        written = provision(path, tmp_path / "keys", seed=b"t")
        stores = [read_keystore(p)[2] for p in written]
        for i in range(4):
            for j in range(4):
                assert stores[i].key_for(j) == stores[j].key_for(i)

    def test_load_session_config(self, descriptor, tmp_path):
        path, addresses = descriptor
        written = provision(path, tmp_path / "keys", seed=b"t")
        session = load_session_config(path, written[2])
        assert session.process_id == 2
        assert session.config.n == 4
        assert session.addresses == addresses

    def test_mismatched_group_sizes_rejected(self, descriptor, tmp_path):
        path, _ = descriptor
        written = provision(path, tmp_path / "keys", seed=b"t")
        smaller = tmp_path / "smaller.json"
        write_group_descriptor(smaller, [PeerAddress("h", 1)])
        with pytest.raises(ValueError, match="group of 4"):
            load_session_config(smaller, written[0])

    def test_keygen_cli(self, descriptor, tmp_path, capsys):
        path, _ = descriptor
        assert keygen_main([str(path), "--out-dir", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "process-3.keys.json" in out

    def test_unseeded_provision_differs_per_run(self, descriptor, tmp_path):
        path, _ = descriptor
        a = provision(path, tmp_path / "a")
        b = provision(path, tmp_path / "b")
        assert read_keystore(a[0])[2].key_for(1) != read_keystore(b[0])[2].key_for(1)


class TestNodeShell:
    def make_shell(self):
        net = InstantNet(4)
        stores = [
            ReplicatedKvStore(stack.create("ab", ("kv",))) for stack in net.stacks
        ]
        return NodeShell(stores[0]), stores, net

    def test_put_get_cycle(self):
        shell, stores, net = self.make_shell()
        assert "replicating" in shell.handle("put name ritas")
        net.run()
        assert shell.handle("get name") == "ritas"
        assert stores[3].get("name") == b"ritas"

    def test_get_missing(self):
        shell, _, _ = self.make_shell()
        assert shell.handle("get nope") == "(nil)"

    def test_delete(self):
        shell, _, net = self.make_shell()
        shell.handle("put k v")
        net.run()
        shell.handle("del k")
        net.run()
        assert shell.handle("get k") == "(nil)"

    def test_keys_and_digest(self):
        shell, stores, net = self.make_shell()
        shell.handle("put b 2")
        shell.handle("put a 1")
        net.run()
        assert shell.handle("keys") == "a\nb"
        assert shell.handle("digest") == stores[1].state_digest().hex()

    def test_log(self):
        shell, _, net = self.make_shell()
        shell.handle("put x 1")
        net.run()
        assert "put" in shell.handle("log")

    def test_quit(self):
        shell, _, _ = self.make_shell()
        assert shell.handle("quit") == "bye"
        assert not shell.running

    def test_help_on_unknown(self):
        shell, _, _ = self.make_shell()
        assert "commands:" in shell.handle("frobnicate")

    def test_blank_line_ignored(self):
        shell, _, _ = self.make_shell()
        assert shell.handle("   ") is None
