"""Sharded LAN simulation: S groups on one loop, isolated but interleaved."""

from repro.core.config import GroupConfig
from repro.net.faults import FaultPlan, Partition
from repro.shard.sim import ShardedLanSimulation, shard_names, sharded_configs


def seed_burst(sharded, k_per_shard=8, tag=("t",)):
    """Create one AB per stack and broadcast ``k_per_shard`` messages
    per shard; returns a per-shard delivered counter list."""
    delivered = [0] * len(sharded)

    def observer(index):
        def observe(_instance, _delivery):
            delivered[index] += 1

        return observe

    for index, sim in enumerate(sharded.shards):
        for pid in sim.config.process_ids:
            ab = sim.stacks[pid].create("ab", tag)
            if pid == 0:
                ab.on_deliver = observer(index)
    payload = b"m"
    for sim in sharded.shards:
        for pid in sim.config.process_ids:
            stack = sim.stacks[pid]
            with stack.coalesce():
                for _ in range(k_per_shard // sim.config.num_processes):
                    stack.instance_at(tag).broadcast(payload)
    return delivered


class TestConfigs:
    def test_shard_names_default(self):
        assert shard_names(3) == ["s0", "s1", "s2"]

    def test_sharded_configs_set_distinct_tags(self):
        configs = sharded_configs(GroupConfig(4), ["a", "b"])
        assert [c.group_tag for c in configs] == ["a", "b"]
        assert all(c.num_processes == 4 for c in configs)

    def test_scoped_seeds_differ_across_shards(self):
        a, b = sharded_configs(GroupConfig(4), ["a", "b"])
        assert a.scoped_seed("x") != b.scoped_seed("x")
        assert a.scoped_seed_bytes(b"x") != b.scoped_seed_bytes(b"x")

    def test_empty_tag_is_byte_identical(self):
        """The unsharded path derives exactly the legacy seeds."""
        config = GroupConfig(4)
        assert config.scoped_seed("x") == "x"
        assert config.scoped_seed_bytes(b"x") == b"x"


class TestProgress:
    def test_every_shard_orders_its_own_stream(self):
        sharded = ShardedLanSimulation(3, n=4, seed=5)
        delivered = seed_burst(sharded, k_per_shard=8)
        reason = sharded.run(
            until=lambda: all(d >= 8 for d in delivered), max_time=60.0
        )
        assert reason == "until"
        assert delivered == [8, 8, 8]

    def test_shards_order_independently(self):
        """Shard streams are independent total orders: each shard's
        delivery log contains exactly its own broadcasts."""
        sharded = ShardedLanSimulation(2, n=4, seed=9)
        logs = [[] for _ in range(2)]
        for index, sim in enumerate(sharded.shards):
            for pid in sim.config.process_ids:
                ab = sim.stacks[pid].create("ab", ("t",))
                if pid == 0:
                    ab.on_deliver = lambda _i, d, log=logs[index]: log.append(
                        bytes(d.payload)
                    )
        for index, sim in enumerate(sharded.shards):
            stack = sim.stacks[0]
            with stack.coalesce():
                for j in range(4):
                    stack.instance_at(("t",)).broadcast(
                        f"shard{index}-{j}".encode()
                    )
        reason = sharded.run(
            until=lambda: all(len(log) >= 4 for log in logs), max_time=60.0
        )
        assert reason == "until"
        for index, log in enumerate(logs):
            assert all(m.startswith(f"shard{index}-".encode()) for m in log)

    def test_same_seed_replay_is_deterministic(self):
        def run_once():
            sharded = ShardedLanSimulation(2, n=4, seed=13)
            delivered = seed_burst(sharded, k_per_shard=8)
            reason = sharded.run(
                until=lambda: all(d >= 8 for d in delivered), max_time=60.0
            )
            assert reason == "until"
            return sharded.now, sharded.loop.events_processed

        assert run_once() == run_once()


class TestInvariants:
    def test_per_shard_checkers_coexist(self):
        """S checkers chain on one loop's on_event hook; every shard's
        invariants are asserted after every event."""
        sharded = ShardedLanSimulation(2, n=4, seed=7)
        checkers = sharded.attach_checkers()
        assert len(checkers) == 2
        delivered = seed_burst(sharded, k_per_shard=4)
        reason = sharded.run(
            until=lambda: all(d >= 4 for d in delivered), max_time=60.0
        )
        assert reason == "until"
        sharded.check_all(checkers)
        for checker in checkers:
            assert checker.checks_run > 0


class TestMetrics:
    def test_shard_label_separates_series(self):
        sharded = ShardedLanSimulation(2, n=4, seed=3)
        registries = sharded.enable_metrics()
        assert len(registries) == 4  # one per host position
        delivered = seed_burst(sharded, k_per_shard=4)
        reason = sharded.run(
            until=lambda: all(d >= 4 for d in delivered), max_time=60.0
        )
        assert reason == "until"
        snapshot = registries[0].snapshot()
        shards_seen = {
            metric.get("labels", {}).get("shard") for metric in snapshot
        }
        assert {"s0", "s1"} <= shards_seen


class TestPartitionIsolation:
    def test_partitioned_shard_stalls_while_others_progress(self):
        """The e2e sharding claim: a 2-2 split inside shard 1's group
        denies it a quorum, but shards 0 and 2 -- same hosts timeline,
        same loop -- keep ordering; after the heal, shard 1 catches up
        with nothing lost."""
        heal_at = 0.080
        plans = {1: FaultPlan(partitions=[Partition(0.0, heal_at, ((0, 1), (2, 3)))])}
        sharded = ShardedLanSimulation(3, n=4, seed=21, fault_plans=plans)
        delivered = seed_burst(sharded, k_per_shard=8)
        # The healthy shards finish their bursts...
        reason = sharded.run(
            until=lambda: delivered[0] >= 8 and delivered[2] >= 8,
            max_time=heal_at,
        )
        assert reason == "until"
        # ...strictly while shard 1 is still split (virtual time proves
        # it: the partition has not healed yet).
        assert sharded.now < heal_at
        assert delivered[1] < 8
        # After the heal, shard 1 completes the same burst.
        reason = sharded.run(
            until=lambda: delivered[1] >= 8, max_time=60.0
        )
        assert reason == "until"
        assert delivered == [8, 8, 8]
