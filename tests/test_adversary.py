"""Byzantine strategies: every Section 4.2 attack must fail against the
honest majority, and the fault plan must keep the attacker inside f."""

import pytest

from repro.adversary import (
    byzantine_paper_faultload,
    crash_consensus_faultload,
    random_noise_faultload,
)
from repro.core.stack import ProtocolFactory
from repro.net.faults import FaultPlan

from util import InstantNet, ShuffleNet, decisions_of


def bc_net(seed, transform, attacker=3):
    factory = transform(ProtocolFactory.default())
    return ShuffleNet(4, seed=seed, factories={attacker: factory})


def run_bc(net, proposals):
    for pid, stack in enumerate(net.stacks):
        stack.create("bc", ("bc",))
    for pid, stack in enumerate(net.stacks):
        stack.instance_at(("bc",)).propose(proposals[pid])
    net.run()
    return [net.stacks[pid].instance_at(("bc",)).decision for pid in range(3)]


class TestAlwaysZeroAttack:
    def test_cannot_flip_unanimous_one(self):
        """All correct propose 1; the attacker pushes 0 everywhere.  The
        validity property must hold: decision 1."""
        for seed in range(10):
            net = bc_net(seed, byzantine_paper_faultload)
            decisions = run_bc(net, [1, 1, 1, 0])
            assert decisions == [1, 1, 1], f"seed {seed}: {decisions}"

    def test_correct_still_decide_one_round(self):
        for seed in range(5):
            net = bc_net(seed, byzantine_paper_faultload)
            run_bc(net, [1, 1, 1, 0])
            for pid in range(3):
                bc = net.stacks[pid].instance_at(("bc",))
                assert bc.decision_round == 1, f"seed {seed}"

    def test_zero_attack_with_unanimous_zero_is_harmless(self):
        net = bc_net(0, byzantine_paper_faultload)
        assert run_bc(net, [0, 0, 0, 0]) == [0, 0, 0]


class TestRandomNoiseAttack:
    def test_agreement_survives_noise(self):
        for seed in range(10):
            net = bc_net(seed, random_noise_faultload)
            decisions = run_bc(net, [1, 1, 1, 1])
            assert decisions == [1, 1, 1], f"seed {seed}"

    def test_mixed_proposals_still_agree(self):
        for seed in range(10):
            net = bc_net(seed, random_noise_faultload)
            decisions = run_bc(net, [0, 1, 0, 1])
            assert len(set(decisions)) == 1, f"seed {seed}"


class TestOmissionAttack:
    def test_mute_consensus_participant_tolerated(self):
        for seed in range(10):
            net = bc_net(seed, crash_consensus_faultload)
            decisions = run_bc(net, [1, 1, 1, 1])
            assert decisions == [1, 1, 1], f"seed {seed}"


class TestMvcAttackThroughTheStack:
    def test_full_paper_faultload_on_mvc(self):
        for seed in range(8):
            factory = byzantine_paper_faultload(ProtocolFactory.default())
            net = ShuffleNet(4, seed=seed, factories={2: factory})
            for stack in net.stacks:
                stack.create("mvc", ("m",))
            for stack in net.stacks:
                stack.instance_at(("m",)).propose(b"payload")
            net.run()
            correct = [
                net.stacks[pid].instance_at(("m",)).decision for pid in (0, 1, 3)
            ]
            assert correct == [b"payload"] * 3, f"seed {seed}"


class TestFaultPlan:
    def test_too_many_faults_rejected(self):
        plan = FaultPlan(crashed={0: 0.0}, byzantine={1: byzantine_paper_faultload})
        with pytest.raises(ValueError, match="tolerates"):
            plan.validate(4, 1)

    def test_crash_and_byzantine_same_process_is_one_fault(self):
        plan = FaultPlan(crashed={0: 0.0}, byzantine={0: byzantine_paper_faultload})
        plan.validate(4, 1)
        assert plan.faulty_ids() == {0}

    def test_out_of_range_pid_rejected(self):
        with pytest.raises(ValueError, match="range"):
            FaultPlan(crashed={7: 0.0}).validate(4, 1)

    def test_is_crashed_respects_time(self):
        plan = FaultPlan(crashed={1: 2.0})
        assert not plan.is_crashed(1, 1.0)
        assert plan.is_crashed(1, 2.0)
        assert not plan.is_crashed(0, 99.0)

    def test_constructors(self):
        assert FaultPlan.failure_free().faulty_ids() == set()
        assert FaultPlan.fail_stop(2).crashed == {2: 0.0}
        plan = FaultPlan.with_byzantine(1, byzantine_paper_faultload)
        assert plan.faulty_ids() == {1}
