"""Group-wide conservation laws of the channel.

In a failure-free run that is allowed to quiesce, every logical frame
sent by some process is received by some process -- batching changes the
wire encoding, never the logical frame counts -- and every queue the obs
layer watches drains back to zero.
"""

import pytest

from repro import GroupConfig, LanSimulation
from repro.core.stats import StackStats

#: Gauges that must read zero once the group has quiesced (levels, not
#: totals: anything nonzero here is work stuck in flight).
QUIESCENT_GAUGES = (
    "ritas_send_queue_frames",
    "ritas_send_queue_bytes",
    "ritas_ooc_pending",
    "ritas_ooc_bytes",
    "ritas_ab_pending_local",
)


def _run_to_quiescence(batching: bool, k: int = 12, n: int = 4, seed: int = 7):
    sim = LanSimulation(GroupConfig(n, batching=batching), seed=seed)
    sim.enable_metrics()
    for pid in sim.config.process_ids:
        sim.stacks[pid].create("ab", ("law",))
    for pid in sim.config.process_ids:
        ab = sim.stacks[pid].instance_at(("law",))
        with sim.stacks[pid].coalesce():
            for index in range(k // n):
                ab.broadcast(b"conserve-%d-%d" % (pid, index))
    # No `until` predicate: run until the event queue holds nothing but
    # housekeeping, i.e. the group has quiesced.
    sim.run(max_time=300.0)
    assert sim.stacks[0].instance_at(("law",)).delivered_count >= k
    sim.sample_metrics()
    return sim


@pytest.mark.parametrize("batching", [True, False], ids=["batched", "unbatched"])
class TestConservation:
    def test_frames_and_bytes_conserved(self, batching):
        sim = _run_to_quiescence(batching)
        combined = StackStats()
        for pid in sim.config.process_ids:
            combined.merge(sim.stacks[pid].stats)
        assert combined.frames_sent > 0
        assert combined.frames_sent == combined.frames_received
        assert combined.bytes_sent == combined.bytes_received
        assert sum(combined.dropped.values()) == 0

    def test_batch_containers_conserved(self, batching):
        sim = _run_to_quiescence(batching)
        combined = StackStats()
        for pid in sim.config.process_ids:
            combined.merge(sim.stacks[pid].stats)
        # Containers come from two coalescing stages: the stacks' flush
        # windows (batches_sent) and the simulated link layer
        # (link_batches); every one of them is opened exactly once on
        # the receive side.
        assert combined.batches_received == combined.batches_sent + sim.link_batches
        assert (
            combined.frames_decoalesced
            == combined.frames_coalesced + sim.link_frames_coalesced
        )
        if batching:
            assert combined.batches_received > 0
        else:
            assert combined.batches_received == 0

    def test_obs_gauges_zero_after_quiescence(self, batching):
        sim = _run_to_quiescence(batching)
        for registry in sim.metric_registries():
            for metric in registry.metrics():
                if metric.name in QUIESCENT_GAUGES:
                    assert metric.value == 0, (
                        metric.name,
                        dict(metric.labels),
                        metric.value,
                    )
