"""Engine conformance: every registered binary-consensus engine must
pass the same battery.

The :class:`~repro.core.bc_engine.BCEngine` interface promises the
upper layers one contract -- propose a bit, agree on a bit, survive the
paper's faultloads -- regardless of algorithm.  This suite runs each
supported (engine, coin) pair through the engine-agnostic parts of the
bc unit battery (agreement, validity, crash faults, API edges), the
always-zero Byzantine attack, the byz-bc-split scenarios under the
invariant checker, a short explorer budget, and same-seed
byte-identity, so a new engine cannot merge without matching the
default engine's guarantees.
"""

import random

import pytest

from repro.core.bc_engine import BC_ENGINES, bc_engine_names, resolve_bc_engine
from repro.core.config import GroupConfig
from repro.core.errors import ConfigurationError, ProtocolViolationError
from repro.core.stack import ProtocolFactory, Stack
from repro.core.trace import Tracer
from repro.crypto.coin import LocalCoin
from repro.crypto.keys import TrustedDealer
from repro.eval.bc_compare import ENGINE_PAIRS

from util import InstantNet, ShuffleNet, decisions_of

SCENARIO_BY_PAIR = {
    ("bracha", "local"): "byz-bc-split",
    ("bracha", "shared"): "byz-bc-split-shared",
    ("crain", "shared"): "byz-bc-split-crain",
}

pair_params = pytest.mark.parametrize(
    ("engine", "coin"), ENGINE_PAIRS, ids=[f"{e}+{c}" for e, c in ENGINE_PAIRS]
)


def pair_config(engine, coin, n=4):
    return GroupConfig(n, bc_engine=engine, bc_coin=coin)


def run_bc(net, proposals, path=("bc",)):
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.create("bc", path)
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.instance_at(path).propose(proposals[pid])
    net.run()
    return decisions_of(net, path)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert bc_engine_names() == ["bracha", "crain"]

    def test_unknown_engine_raises(self):
        with pytest.raises(ConfigurationError, match="registered"):
            resolve_bc_engine("nonesuch")

    def test_unknown_engine_rejected_at_stack_build(self):
        config = GroupConfig(4, bc_engine="nonesuch")
        with pytest.raises(ConfigurationError, match="nonesuch"):
            ProtocolFactory.default(config)

    def test_engine_names_match_registration(self):
        for name in bc_engine_names():
            assert BC_ENGINES[name].engine_name == name

    def test_bad_coin_knob_rejected(self):
        with pytest.raises(ConfigurationError, match="bc_coin"):
            GroupConfig(4, bc_coin="quantum")

    def test_crain_over_local_coin_rejected_by_config(self):
        with pytest.raises(ConfigurationError, match="common coin"):
            GroupConfig(4, bc_engine="crain", bc_coin="local")

    def test_common_coin_requirement_enforced_at_stack_build(self):
        """Even past the config check (explicit coin injection), the
        stack refuses a requires_common_coin engine over a local coin."""
        config = GroupConfig(4, bc_engine="crain", bc_coin="shared")
        dealer = TrustedDealer(4, seed=b"engines")
        with pytest.raises(ConfigurationError, match="common coin"):
            Stack(
                config,
                0,
                outbox=lambda dest, data: None,
                keystore=dealer.keystore_for(0),
                coin=LocalCoin(random.Random(1)),
            )

    def test_shared_coin_config_needs_dealt_coin(self):
        config = GroupConfig(4, bc_coin="shared")
        dealer = TrustedDealer(4, seed=b"engines")
        with pytest.raises(ConfigurationError, match="deal"):
            Stack(
                config,
                0,
                outbox=lambda dest, data: None,
                keystore=dealer.keystore_for(0),
            )


@pair_params
class TestAgreementValidity:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_unanimous_proposal_decides_that_bit(self, engine, coin, bit):
        net = InstantNet(config=pair_config(engine, coin))
        assert run_bc(net, [bit] * 4) == [bit] * 4

    @pytest.mark.parametrize("proposals", [[0, 0, 0, 1], [1, 0, 1, 1], [0, 1, 0, 1]])
    def test_mixed_proposals_agree(self, engine, coin, proposals):
        net = InstantNet(config=pair_config(engine, coin))
        decisions = run_bc(net, proposals)
        assert len(set(decisions)) == 1
        assert decisions[0] in (0, 1)

    def test_agreement_on_shuffled_schedules(self, engine, coin):
        for seed in range(12):
            net = ShuffleNet(config=pair_config(engine, coin), seed=seed)
            decisions = run_bc(net, [seed % 2, (seed + 1) % 2, 1, 0])
            assert len(set(decisions)) == 1, f"seed {seed}: {decisions}"

    def test_unanimity_respected_on_shuffled_schedules(self, engine, coin):
        for seed in range(8):
            net = ShuffleNet(config=pair_config(engine, coin), seed=seed)
            assert run_bc(net, [1, 1, 1, 1]) == [1, 1, 1, 1], f"seed {seed}"

    def test_larger_group_n7(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin, n=7))
        decisions = run_bc(net, [1, 0, 1, 0, 1, 0, 1])
        assert len(set(decisions)) == 1

    def test_engine_name_visible_in_inspect(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin))
        run_bc(net, [1, 1, 1, 1])
        view = net.stacks[0].instance_at(("bc",)).inspect()
        assert view["engine"] == engine
        assert view["decided"] is True
        assert view["decision"] == 1


@pair_params
class TestCrashFaults:
    def test_one_crashed_from_start(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin), crashed={3})
        assert run_bc(net, [1, 1, 1, 1]) == [1, 1, 1]

    def test_crashed_with_mixed_proposals(self, engine, coin):
        for seed in range(6):
            net = ShuffleNet(config=pair_config(engine, coin), seed=seed, crashed={0})
            decisions = run_bc(net, [0, 1, 0, 1])
            assert len(set(decisions)) == 1, f"seed {seed}"


@pair_params
class TestApi:
    def test_out_of_domain_proposal_rejected(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin))
        bc = net.stacks[0].create("bc", ("bc",))
        with pytest.raises(ValueError):
            bc.propose(2)
        with pytest.raises(ValueError):
            bc.propose(None)

    def test_double_proposal_rejected(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin))
        bc = net.stacks[0].create("bc", ("bc",))
        bc.propose(1)
        with pytest.raises(ProtocolViolationError):
            bc.propose(0)

    def test_direct_frames_rejected(self, engine, coin):
        from repro.core.wire import encode_frame

        net = InstantNet(config=pair_config(engine, coin))
        net.stacks[0].create("bc", ("bc",))
        net.stacks[0].receive(1, encode_frame(("bc",), 0, 1))
        assert net.stacks[0].stats.dropped["protocol-violation"] == 1

    def test_decision_recorded_in_stats(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin))
        run_bc(net, [1, 1, 1, 1])
        stats = net.stacks[0].stats
        assert stats.decisions["bc"] == 1

    def test_decision_delivered_once(self, engine, coin):
        net = InstantNet(config=pair_config(engine, coin))
        events = []
        for pid, stack in enumerate(net.stacks):
            bc = stack.create("bc", ("bc",))
            if pid == 0:
                bc.on_deliver = lambda _i, v: events.append(v)
        for stack in net.stacks:
            stack.instance_at(("bc",)).propose(1)
        net.run()
        assert events == [1]


@pair_params
class TestByzantine:
    def test_always_zero_attacker_cannot_break_validity(self, engine, coin):
        """Three correct processes propose 1; the always-zero attacker's
        unbacked zeros must never reach a decision (n=4, f=1)."""
        from repro.adversary.strategies import byzantine_paper_faultload

        for seed in range(6):
            config = pair_config(engine, coin)
            honest = ProtocolFactory.default(config)
            net = ShuffleNet(
                config=config, seed=seed, factories={3: byzantine_paper_faultload(honest)}
            )
            decisions = run_bc(net, [1, 1, 1, 1])
            assert decisions[:3] == [1, 1, 1], f"seed {seed}: {decisions}"

    def test_attacker_variant_derives_from_configured_engine(self, engine, coin):
        from repro.adversary.strategies import byzantine_paper_faultload

        config = pair_config(engine, coin)
        honest = ProtocolFactory.default(config)
        attacked = byzantine_paper_faultload(honest)
        variant = attacked.resolve("bc")
        assert issubclass(variant, honest.resolve("bc"))
        assert variant.engine_name == engine


@pair_params
class TestScenarioSweep:
    def test_byz_bc_split_scenario_invariants(self, engine, coin):
        """The engine's byz-bc-split variant runs clean under the full
        invariant checker (agreement, validity, step-3 uniqueness,
        coin legality)."""
        from repro.check.explore import run_one
        from repro.check.scenarios import SCENARIOS

        scenario = SCENARIOS[SCENARIO_BY_PAIR[(engine, coin)]]
        for seed in range(3):
            result = run_one(scenario, seed=seed, tie_break_seed=None)
            assert result["outcome"] == "ok", result

    def test_short_explore_budget_clean(self, engine, coin):
        from repro.check.explore import explore
        from repro.check.scenarios import SCENARIOS

        scenario = SCENARIOS[SCENARIO_BY_PAIR[(engine, coin)]]
        assert explore(scenario, 3) is None


@pair_params
class TestDeterminism:
    def _traced_run(self, engine, coin, seed):
        from repro.check.scenarios import SCENARIOS

        scenario = SCENARIOS[SCENARIO_BY_PAIR[(engine, coin)]]
        sim = scenario.build(seed, seed, 1e-4)
        tracers = []
        for stack in sim.stacks:
            tracer = Tracer(clock=lambda: sim.loop.now)
            stack.tracer = tracer
            tracers.append(tracer)
        scenario.apply_ops(sim, scenario.ops)
        sim.run(max_time=scenario.max_time)
        return "\n".join(tracer.render() for tracer in tracers)

    def test_same_seed_runs_byte_identical(self, engine, coin):
        first = self._traced_run(engine, coin, 5)
        second = self._traced_run(engine, coin, 5)
        assert first  # the run actually traced something
        assert first == second

    def test_different_seeds_diverge(self, engine, coin):
        assert self._traced_run(engine, coin, 5) != self._traced_run(engine, coin, 6)


class TestHeadToHead:
    """The acceptance comparison: under the byz-bc-split workload
    (split proposals + always-zero attacker) the local-coin engine's
    rounds-to-decide has a visible tail while both shared-coin pairs
    stay bounded.  Seeds are fixed, so the distributions are exact."""

    SAMPLES = 40

    def _dist(self, engine, coin):
        from repro.eval.bc_compare import rounds_distribution

        return rounds_distribution(engine, coin, samples=self.SAMPLES, attacker=True)

    def test_local_coin_has_a_rounds_tail(self):
        dist = self._dist("bracha", "local")
        assert sum(dist.values()) == self.SAMPLES  # everyone decided
        assert sum(c for r, c in dist.items() if r > 2) > 0

    def test_shared_coin_bracha_is_bounded(self):
        dist = self._dist("bracha", "shared")
        assert sum(dist.values()) == self.SAMPLES
        # One coin round after any disagreement suffices.
        assert max(dist) <= 2

    def test_crain_bounded_in_expectation(self):
        dist = self._dist("crain", "shared")
        assert sum(dist.values()) == self.SAMPLES
        mean = sum(r * c for r, c in dist.items()) / self.SAMPLES
        # 1 + E[geometric(1/2)] ~ 3; schedule-independent, unlike the
        # local coin whose tail the adversarial schedule can stretch.
        assert mean < 4.0


class TestMetrics:
    def _metered_net(self, engine, coin, proposals, *, seed=0, shuffle=False):
        from repro.obs.metrics import MetricsRegistry

        cls = ShuffleNet if shuffle else InstantNet
        net = cls(config=pair_config(engine, coin), seed=seed)
        for stack in net.stacks:
            stack.metrics = MetricsRegistry()
        run_bc(net, proposals)
        return net

    @pair_params
    def test_rounds_to_decide_histogram_labeled_per_engine(self, engine, coin):
        net = self._metered_net(engine, coin, [1, 1, 1, 1])
        metric = [
            m
            for m in net.stacks[0].metrics.metrics()
            if m.name == "ritas_bc_rounds_to_decide"
        ]
        assert len(metric) == 1
        assert dict(metric[0].labels)["engine"] == engine
        assert metric[0].count == 1

    def test_coin_total_counts_at_toss_time(self):
        """Satellite: the coin counter must tick for *every* toss, not
        only when the coin value is adopted as the next estimate."""
        # Schedule seed 13 drives two rounds of split-vote step 3 into
        # the coin branch (8 tosses across the group, verified).
        net = self._metered_net("bracha", "local", [0, 1, 0, 1], seed=13, shuffle=True)
        tossed = sum(
            len(stack.instance_at(("bc",))._coin_rounds) for stack in net.stacks
        )
        counted = sum(
            m.value
            for stack in net.stacks
            for m in stack.metrics.metrics()
            if m.name == "ritas_bc_coin_total"
        )
        assert tossed > 0
        assert counted == tossed
