"""The consistent-hash shard map: determinism, balance, stability."""

import pytest

from repro.shard.ring import DEFAULT_VNODES, ShardMap


class TestConstruction:
    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            ShardMap(["s0", "s0"])

    def test_rejects_empty_and_slashed_names(self):
        with pytest.raises(ValueError):
            ShardMap([""])
        with pytest.raises(ValueError):
            ShardMap(["a/b"])

    def test_rejects_no_shards(self):
        with pytest.raises(ValueError):
            ShardMap([])

    def test_len_and_names(self):
        shard_map = ShardMap(["a", "b", "c"])
        assert len(shard_map) == 3
        assert shard_map.names == ("a", "b", "c")
        assert shard_map.index_of("b") == 1


class TestOwnership:
    def test_deterministic_across_instances(self):
        """Two maps built from the same names agree on every key --
        routing state is derived, never negotiated."""
        a = ShardMap(["s0", "s1", "s2", "s3"])
        b = ShardMap(["s0", "s1", "s2", "s3"])
        keys = [f"key-{i}" for i in range(500)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_order_insensitive_ownership(self):
        """Ownership depends on shard *names*, not list order: the ring
        hashes name+vnode, so permuting the name list only permutes the
        indexes, never which shard owns a key."""
        a = ShardMap(["alpha", "beta", "gamma"])
        b = ShardMap(["gamma", "alpha", "beta"])
        for i in range(300):
            key = f"k{i}"
            assert a.owner_name(key) == b.owner_name(key)

    def test_bytes_and_str_keys_agree(self):
        shard_map = ShardMap(["s0", "s1"])
        assert shard_map.owner("hello") == shard_map.owner(b"hello")

    def test_single_shard_owns_everything(self):
        shard_map = ShardMap(["only"])
        assert all(shard_map.owner(f"k{i}") == 0 for i in range(100))

    def test_spread_is_balanced(self):
        """With DEFAULT_VNODES virtual nodes per shard, no shard's share
        of a uniform keyspace strays wildly from 1/S."""
        shard_map = ShardMap([f"s{i}" for i in range(4)], vnodes=DEFAULT_VNODES)
        keys = [f"user:{i}" for i in range(4000)]
        spread = shard_map.spread(keys)
        assert sum(spread.values()) == len(keys)
        for name in shard_map.names:
            share = spread[name] / len(keys)
            assert 0.10 < share < 0.45, f"{name} owns {share:.0%}"


class TestRingChangeStability:
    """The consistent-hashing contract: adding or removing one shard
    moves only ~1/S of the keys, and never shuffles keys between two
    shards that are present in both rings."""

    def test_adding_a_shard_moves_about_one_over_s(self):
        before = ShardMap([f"s{i}" for i in range(4)])
        after = before.with_shard("s4")
        keys = [f"k{i}" for i in range(4000)]
        moved = sum(
            1 for k in keys if before.owner_name(k) != after.owner_name(k)
        )
        fraction = moved / len(keys)
        # Expect ~1/5 of keys to land on the newcomer; allow slack for
        # vnode placement variance but exclude both "nothing moved"
        # (the new shard owns no keys) and "everything reshuffled".
        assert 0.05 < fraction < 0.40, f"moved {fraction:.0%}"

    def test_moved_keys_only_move_to_the_new_shard(self):
        before = ShardMap([f"s{i}" for i in range(4)])
        after = before.with_shard("s4")
        for i in range(2000):
            key = f"k{i}"
            if before.owner_name(key) != after.owner_name(key):
                assert after.owner_name(key) == "s4"

    def test_removing_a_shard_only_reassigns_its_keys(self):
        before = ShardMap([f"s{i}" for i in range(5)])
        after = before.without_shard("s4")
        for i in range(2000):
            key = f"k{i}"
            if before.owner_name(key) != "s4":
                assert after.owner_name(key) == before.owner_name(key)

    def test_add_then_remove_round_trips(self):
        base = ShardMap(["a", "b", "c"])
        round_tripped = base.with_shard("d").without_shard("d")
        for i in range(500):
            key = f"k{i}"
            assert round_tripped.owner_name(key) == base.owner_name(key)
