"""Property-based tests for state machine replication and the KV store:
any command mix, any schedule, any single fault -- identical state."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps.kv_store import ReplicatedKvStore
from repro.apps.state_machine import Command, ReplicatedStateMachine

from util import ShuffleNet

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

keys = st.sampled_from(["a", "b", "c", "d"])
kv_ops = st.one_of(
    st.tuples(st.just("put"), keys, st.binary(max_size=8)),
    st.tuples(st.just("delete"), keys),
    st.tuples(st.just("cas"), keys, st.binary(max_size=4), st.binary(max_size=4)),
)


@given(
    ops=st.lists(st.tuples(st.integers(0, 3), kv_ops), max_size=16),
    seed=st.integers(0, 5000),
)
@settings(max_examples=40, **COMMON)
def test_kv_replicas_converge_on_any_history(ops, seed):
    net = ShuffleNet(4, seed=seed)
    stores = [
        ReplicatedKvStore(stack.create("ab", ("kv",))) for stack in net.stacks
    ]
    for replica, op in ops:
        if op[0] == "put":
            stores[replica].put(op[1], op[2])
        elif op[0] == "delete":
            stores[replica].delete(op[1])
        else:
            stores[replica].cas(op[1], op[2], op[3])
    net.run()
    digests = {store.state_digest() for store in stores}
    assert len(digests) == 1
    logs = {
        tuple(d.msg_id for d, _ in store.rsm.applied) for store in stores
    }
    assert len(logs) == 1


@given(
    ops=st.lists(st.tuples(st.integers(0, 3), kv_ops), min_size=1, max_size=10),
    seed=st.integers(0, 5000),
    crashed=st.integers(0, 3),
)
@settings(max_examples=25, **COMMON)
def test_kv_converges_with_a_crash(ops, seed, crashed):
    net = ShuffleNet(4, seed=seed, crashed={crashed})
    stores = {}
    for pid, stack in enumerate(net.stacks):
        if pid != crashed:
            stores[pid] = ReplicatedKvStore(stack.create("ab", ("kv",)))
    for replica, op in ops:
        if replica == crashed:
            continue
        store = stores[replica]
        if op[0] == "put":
            store.put(op[1], op[2])
        elif op[0] == "delete":
            store.delete(op[1])
        else:
            store.cas(op[1], op[2], op[3])
    net.run()
    digests = {store.state_digest() for store in stores.values()}
    assert len(digests) == 1


@given(
    amounts=st.lists(st.tuples(st.integers(0, 3), st.integers(-50, 50)), max_size=12),
    seed=st.integers(0, 5000),
)
@settings(max_examples=30, **COMMON)
def test_counter_rsm_sums_identically(amounts, seed):
    def apply_fn(state, command):
        if command.op == "add" and len(command.args) == 1:
            return state + command.args[0], None
        return state, None

    net = ShuffleNet(4, seed=seed)
    rsms = [
        ReplicatedStateMachine(stack.create("ab", ("c",)), apply_fn, 0)
        for stack in net.stacks
    ]
    for replica, amount in amounts:
        rsms[replica].submit(Command("add", [amount]))
    net.run()
    states = {rsm.state for rsm in rsms}
    assert len(states) == 1
    assert states.pop() == sum(amount for _, amount in amounts)
