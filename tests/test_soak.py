"""The soak harness, at test scale.

A miniature run -- short fault windows, a few rotations' worth of
simulated time -- through the same code path CI's soak-smoke job and
the hours-long `python -m repro.check soak` use: warmup plus fault
windows, flatness asserted after every settle, invariant checker live
throughout, obs snapshot exported at the end.  Plus the property the
whole harness rests on: a seeded soak is replayable.
"""

import json

from repro.check.soak import SCHEDULE, SoakRunner

FAULT_S = 3.0
SETTLE_S = 2.0


def _mini_runner(seed=0):
    return SoakRunner(seed=seed, fault_s=FAULT_S, settle_s=SETTLE_S)


def test_schedule_covers_the_catalog():
    names = [w.name for w in SCHEDULE]
    assert len(names) == len(set(names))
    assert sum(1 for w in SCHEDULE if w.gray) >= 3
    assert "partition-heal" in names
    assert "churn-rejoin" in names


def test_mini_soak_runs_flat(tmp_path):
    runner = _mini_runner()
    # Warmup (one window length) plus the first three SCHEDULE windows
    # -- the three gray failures.
    report = runner.run(total_s=3 * (FAULT_S + SETTLE_S))
    assert report.simulated_s >= 3 * (FAULT_S + SETTLE_S)
    assert [w.name for w in report.windows][:4] == [
        "warmup",
        "gray-slow-replica",
        "gray-flaky-mac",
        "gray-degrading",
    ]
    assert report.gray_windows == 3
    assert report.writes > 0
    assert report.events > 0
    # Every window settled flat: no parked frames, no pending AB, live.
    for window in report.windows:
        assert window.gauges["link_frames"] == 0
        for pid, process in window.gauges["process"].items():
            assert process["ooc_pending"] == 0, (window.name, pid)
            assert process["ab_pending_local"] == 0, (window.name, pid)

    out = tmp_path / "soak-obs.jsonl"
    runner.export_obs(str(out))
    records = [json.loads(line) for line in out.read_text().splitlines()]
    meta = [r for r in records if r["record"] == "meta"]
    metrics = [r for r in records if r["record"] == "metric"]
    assert meta and all(r["harness"] == "soak" for r in meta)
    assert all(r["windows"] == len(report.windows) for r in meta)
    assert metrics  # metric samples followed the meta records


def test_mini_soak_is_replayable():
    def fingerprint():
        report = _mini_runner(seed=3).run(total_s=FAULT_S + SETTLE_S)
        return (
            report.simulated_s,
            report.events,
            report.writes,
            [(w.name, w.writes, w.end_s) for w in report.windows],
        )

    assert fingerprint() == fingerprint()
