"""The discrete-event loop and the LAN timing model."""

import math

import pytest

from repro.net.network import LAN_2006, LanSimulation, NetworkParameters
from repro.net.simulator import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(0.3, order.append, "c")
        loop.schedule(0.1, order.append, "a")
        loop.schedule(0.2, order.append, "b")
        assert loop.run() == "idle"
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_schedule_order(self):
        loop = EventLoop()
        order = []
        loop.schedule(0.1, order.append, 1)
        loop.schedule(0.1, order.append, 2)
        loop.run()
        assert order == [1, 2]

    def test_now_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.5, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [0.5]
        assert loop.now == 0.5

    def test_nested_scheduling(self):
        loop = EventLoop()
        seen = []
        loop.schedule(0.1, lambda: loop.schedule(0.1, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [pytest.approx(0.2)]

    def test_until_predicate_stops(self):
        loop = EventLoop()
        count = []
        for _ in range(10):
            loop.schedule(0.1, count.append, 1)
        reason = loop.run(until=lambda: len(count) >= 3)
        assert reason == "until"
        assert len(count) == 3

    def test_max_time_stops_before_event(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, fired.append, 1)
        assert loop.run(max_time=0.5) == "max_time"
        assert fired == []
        assert loop.pending() == 1

    def test_max_events(self):
        loop = EventLoop()
        for _ in range(10):
            loop.schedule(0.1, lambda: None)
        assert loop.run(max_events=4) == "max_events"
        assert loop.pending() == 6

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-0.1, lambda: None)

    def test_schedule_in_past_rejected(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule_at(0.5, lambda: None)

    def test_events_processed_counter(self):
        loop = EventLoop()
        for _ in range(5):
            loop.schedule(0.1, lambda: None)
        loop.run()
        assert loop.events_processed == 5


class TestTimingModel:
    def test_loopback_faster_than_network(self):
        sim = LanSimulation(n=4, seed=0)
        times = {}

        def record(tag):
            times[tag] = sim.loop.now

        sim.stacks[0].send_frame(0, ("t",), 0, b"x")  # loopback
        sim.stacks[0].send_frame(1, ("t",), 0, b"x")  # over the wire
        arrivals = []
        sim._deliver_orig = None
        # Drain and inspect by timestamps on events instead: run to idle
        # and compare times via frames_delivered bookkeeping.
        sim.run()
        # Loopback cost is local_delivery_s; wire cost includes switch.
        assert sim.params.local_delivery_s < sim.params.switch_latency_s

    def test_ipsec_increases_wire_bytes(self):
        with_ipsec = LanSimulation(n=4, seed=0, ipsec=True)
        without = LanSimulation(n=4, seed=0, ipsec=False)
        assert (
            with_ipsec.frame_wire_bytes(10)
            == without.frame_wire_bytes(10) + LAN_2006.ipsec_ah_bytes
        )

    def test_frame_wire_bytes_matches_paper_example(self):
        """The paper: a 10-byte payload is an 80-byte frame, +24 with AH."""
        sim = LanSimulation(n=4, seed=0, ipsec=False)
        assert sim.frame_wire_bytes(10) == 80
        sim = LanSimulation(n=4, seed=0, ipsec=True)
        assert sim.frame_wire_bytes(10) == 104

    def test_crashed_process_sends_nothing(self):
        from repro.net.faults import FaultPlan

        sim = LanSimulation(n=4, seed=0, fault_plan=FaultPlan.fail_stop(0))
        sim.stacks[0].send_frame(1, ("t",), 0, b"x")
        sim.run()
        assert sim.frames_delivered == 0

    def test_messages_to_crashed_process_dropped(self):
        from repro.net.faults import FaultPlan

        sim = LanSimulation(n=4, seed=0, fault_plan=FaultPlan.fail_stop(1))
        sim.stacks[0].send_frame(1, ("t",), 0, b"x")
        sim.run()
        assert sim.frames_delivered == 0
        assert sim.frames_dropped_crash == 1

    def test_late_crash_allows_earlier_traffic(self):
        from repro.net.faults import FaultPlan

        sim = LanSimulation(n=4, seed=0, fault_plan=FaultPlan(crashed={1: 0.5}))
        sim.stacks[0].send_frame(1, ("t",), 0, b"x")
        sim.run()
        assert sim.frames_delivered == 1

    def test_deterministic_across_runs(self):
        def run_once():
            sim = LanSimulation(n=4, seed=42)
            done = []
            for pid, stack in enumerate(sim.stacks):
                rb = stack.create("rb", ("d",), sender=0)
                rb.on_deliver = lambda _i, v: done.append(sim.now)
            sim.stacks[0].instance_at(("d",)).broadcast(b"m")
            sim.run(until=lambda: len(done) == 4)
            return done

        assert run_once() == run_once()

    def test_per_pair_fifo_order(self):
        """Frames on the same (src, dst) pair arrive in send order.

        With batching on, back-to-back frames may share a batch
        container; order must hold across and within batches."""
        from repro.core.wire import decode_batch, is_batch

        sim = LanSimulation(n=4, seed=0)
        arrived = []
        sim.stacks[1].receive = lambda src, data: arrived.append(data)
        sim.stacks[0].send_frame(1, ("t",), 0, b"first")
        sim.stacks[0].send_frame(1, ("t",), 0, b"second" * 100)
        sim.stacks[0].send_frame(1, ("t",), 0, b"third")
        sim.run()
        decoded = []
        for unit in arrived:
            decoded.extend(decode_batch(unit) if is_batch(unit) else [unit])
        assert len(decoded) == 3
        assert b"first" in decoded[0]
        assert b"third" in decoded[2]

    def test_per_pair_fifo_order_unbatched(self):
        """Batching off: every frame is its own channel unit, in order."""
        from repro.core.config import GroupConfig

        sim = LanSimulation(GroupConfig(4, batching=False), seed=0)
        arrived = []
        sim.stacks[1].receive = lambda src, data: arrived.append(data)
        sim.stacks[0].send_frame(1, ("t",), 0, b"first")
        sim.stacks[0].send_frame(1, ("t",), 0, b"second" * 100)
        sim.stacks[0].send_frame(1, ("t",), 0, b"third")
        sim.run()
        assert len(arrived) == 3
        assert b"first" in arrived[0]
        assert b"third" in arrived[2]

    def test_with_overrides(self):
        params = NetworkParameters().with_overrides(cpu_send_s=1e-3)
        assert params.cpu_send_s == 1e-3
        assert params.cpu_recv_s == NetworkParameters().cpu_recv_s

    def test_requires_config_or_n(self):
        with pytest.raises(ValueError):
            LanSimulation()

    def test_jitter_changes_timing_not_outcome(self):
        def run_once(jitter):
            sim = LanSimulation(n=4, seed=9, jitter_s=jitter)
            done = []
            for pid, stack in enumerate(sim.stacks):
                rb = stack.create("rb", ("d",), sender=0)
                rb.on_deliver = lambda _i, v: done.append(v)
            sim.stacks[0].instance_at(("d",)).broadcast(b"m")
            sim.run(until=lambda: len(done) == 4)
            return done, sim.now

        base, t_base = run_once(0.0)
        jittered, t_jit = run_once(0.002)
        assert base == jittered
        assert not math.isclose(t_base, t_jit)
