"""Multi-valued consensus: agreement, validity, the ⊥ default, and the
Section 4.2 Byzantine attack."""

import pytest

from repro.core.errors import ProtocolViolationError
from repro.core.stack import ProtocolFactory
from repro.adversary import DefaultValueMultiValuedConsensus

from util import InstantNet, ShuffleNet, decisions_of


def run_mvc(net, proposals, path=("mvc",)):
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.create("mvc", path)
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.instance_at(path).propose(proposals[pid])
    net.run()
    return decisions_of(net, path)


class TestAgreementValidity:
    def test_unanimous_decides_that_value(self):
        net = InstantNet(4)
        assert run_mvc(net, [b"v"] * 4) == [b"v"] * 4

    def test_unanimous_arbitrary_structures(self):
        net = InstantNet(4)
        value = [b"composite", 17, None, ["nested"]]
        assert run_mvc(net, [value] * 4) == [value] * 4

    def test_divergent_proposals_decide_default(self):
        net = InstantNet(4)
        decisions = run_mvc(net, [b"a", b"b", b"c", b"d"])
        assert decisions == [None] * 4

    def test_decision_is_proposed_value_or_default(self):
        for seed in range(15):
            net = ShuffleNet(4, seed=seed)
            proposals = [b"x", b"x", b"y", b"y"]
            decisions = run_mvc(net, proposals)
            assert len(set(decisions)) == 1, f"seed {seed}"
            assert decisions[0] in (None, b"x", b"y"), f"seed {seed}"

    def test_agreement_on_shuffled_schedules(self):
        for seed in range(15):
            net = ShuffleNet(4, seed=seed)
            decisions = run_mvc(net, [b"same"] * 4)
            assert decisions == [b"same"] * 4, f"seed {seed}"

    def test_three_against_one(self):
        """n-2f = 2 identical values suffice to carry the majority value
        when no conflicting justified value emerges."""
        net = InstantNet(4)
        decisions = run_mvc(net, [b"maj", b"maj", b"maj", b"odd"])
        assert len(set(decisions)) == 1

    def test_crashed_process_unanimous_rest(self):
        net = InstantNet(4, crashed={2})
        decisions = run_mvc(net, [b"v", b"v", b"v", b"v"])
        assert decisions == [b"v"] * 3

    def test_crashed_process_shuffled(self):
        for seed in range(10):
            net = ShuffleNet(4, seed=seed, crashed={1})
            decisions = run_mvc(net, [b"w"] * 4)
            assert decisions == [b"w"] * 3, f"seed {seed}"

    def test_larger_group_n7(self):
        net = InstantNet(7)
        assert run_mvc(net, [b"seven"] * 7) == [b"seven"] * 7

    def test_n7_crashed_two(self):
        net = InstantNet(7, crashed={0, 6})
        assert run_mvc(net, [b"v"] * 7) == [b"v"] * 5


class TestApi:
    def test_none_proposal_rejected(self):
        net = InstantNet(4)
        mvc = net.stacks[0].create("mvc", ("m",))
        with pytest.raises(ValueError):
            mvc.propose(None)

    def test_double_proposal_rejected(self):
        net = InstantNet(4)
        mvc = net.stacks[0].create("mvc", ("m",))
        mvc.propose(b"v")
        with pytest.raises(ProtocolViolationError):
            mvc.propose(b"w")

    def test_direct_frames_rejected(self):
        from repro.core.wire import encode_frame

        net = InstantNet(4)
        net.stacks[0].create("mvc", ("m",))
        net.stacks[0].receive(1, encode_frame(("m",), 0, b"x"))
        assert net.stacks[0].stats.dropped["protocol-violation"] == 1

    def test_default_decision_counted(self):
        net = InstantNet(4)
        run_mvc(net, [b"a", b"b", b"c", b"d"])
        assert net.stacks[0].stats.decisions["mvc-default"] == 1

    def test_value_decision_not_counted_as_default(self):
        net = InstantNet(4)
        run_mvc(net, [b"v"] * 4)
        assert net.stacks[0].stats.decisions["mvc-default"] == 0
        assert net.stacks[0].stats.decisions["mvc"] == 1


class TestByzantineAttack:
    """Section 4.2: the corrupt process pushes ⊥ in INIT and VECT."""

    def _net_with_attacker(self, seed, attacker=3):
        factory = ProtocolFactory.default().override(
            "mvc", DefaultValueMultiValuedConsensus
        )
        return ShuffleNet(4, seed=seed, factories={attacker: factory})

    def test_attack_fails_against_unanimous_correct(self):
        for seed in range(10):
            net = self._net_with_attacker(seed)
            decisions = run_mvc(net, [b"v", b"v", b"v", b"v"])
            correct = decisions[:3]
            assert correct == [b"v"] * 3, f"seed {seed}: {decisions}"

    def test_attacker_never_forces_default(self):
        for seed in range(10):
            net = self._net_with_attacker(seed)
            run_mvc(net, [b"v"] * 4)
            for pid in range(3):
                assert net.stacks[pid].stats.decisions["mvc-default"] == 0

    def test_malformed_vect_ignored(self):
        """A corrupt process's VECT with a junk justification is simply
        never validated."""
        from repro.core.echo_broadcast import MSG_INIT as EB_INIT

        net = InstantNet(4)
        for pid in range(3):
            net.stacks[pid].create("mvc", ("m",))
        for pid in range(3):
            net.stacks[pid].instance_at(("m",)).propose(b"v")
        # p3 echo-broadcasts a VECT claiming value b"evil" justified by a
        # fabricated vector; correct INITs never match, so it stays pending.
        for dest in range(3):
            net.stacks[3].send_frame(
                dest, ("m", "vect", 3), EB_INIT, [b"evil", [b"evil"] * 4]
            )
        net.run()
        decisions = [net.stacks[pid].instance_at(("m",)).decision for pid in range(3)]
        assert decisions == [b"v"] * 3

    def test_justified_minority_value_cannot_win_against_quorum(self):
        """Even a *justifiable* conflicting value from the attacker at most
        forces ⊥, never a wrong decision."""
        for seed in range(8):
            net = self._net_with_attacker(seed)
            decisions = run_mvc(net, [b"a", b"a", b"b", b"b"])
            correct = decisions[:3]
            assert len(set(correct)) == 1, f"seed {seed}"
            assert correct[0] in (None, b"a", b"b")
