"""Unit tests for the binary consensus congruence-validation formulas.

These drive `_is_valid` directly (no network) by populating round
state, checking each documented feasibility condition from
docs/PROTOCOLS.md, including the n=5 even-quorum corner cases.
"""

import pytest

from repro.core.config import GroupConfig
from repro.core.stack import Stack


def make_bc(n=4):
    stack = Stack(GroupConfig(n), 0, outbox=lambda d, b: None)
    return stack.create("bc", ("bc",))


def accept(bc, round_number, step, values):
    """Force-accept a list of values at (round, step)."""
    state = bc._round_state(round_number)
    base = len(state.accepted[step])
    for offset, value in enumerate(values):
        sender = base + offset
        state.accepted[step][sender] = value
        state.counts[step][value] += 1


class TestStep1Round1:
    def test_always_valid(self):
        bc = make_bc()
        assert bc._is_valid(1, 1, 0)
        assert bc._is_valid(1, 1, 1)


class TestStep2:
    """q = n - f = 3 for n=4: majority needs 2; tie rule favours 0."""

    def test_needs_quorum_of_step1(self):
        bc = make_bc()
        accept(bc, 1, 1, [1, 1])
        assert not bc._is_valid(1, 2, 1)  # only 2 step-1 values seen

    def test_majority_one(self):
        bc = make_bc()
        accept(bc, 1, 1, [1, 1, 0])
        assert bc._is_valid(1, 2, 1)
        # 0 would need c0 >= ceil(q/2) = 2 (tie rule); only one 0 exists.
        assert not bc._is_valid(1, 2, 0)

    def test_zero_with_tie_support(self):
        bc = make_bc()
        accept(bc, 1, 1, [1, 1, 0, 0])
        # Subset {1, 0, 0} gives majority 0; subset {1, 1, 0} gives 1.
        assert bc._is_valid(1, 2, 0)
        assert bc._is_valid(1, 2, 1)

    def test_minority_value_invalid(self):
        bc = make_bc()
        accept(bc, 1, 1, [1, 1, 1])
        assert bc._is_valid(1, 2, 1)
        assert not bc._is_valid(1, 2, 0)

    def test_even_quorum_tie_asymmetry(self):
        """n=5 -> q=4: a 2-2 tie justifies 0 (the tie rule) but not 1."""
        bc = make_bc(n=5)
        accept(bc, 1, 1, [0, 0, 1, 1])
        assert bc._is_valid(1, 2, 0)
        assert not bc._is_valid(1, 2, 1)

    def test_even_quorum_strict_majority_one(self):
        bc = make_bc(n=5)
        accept(bc, 1, 1, [1, 1, 1, 0])
        assert bc._is_valid(1, 2, 1)


class TestStep3:
    """The bar is over n (see docs/PROTOCOLS.md): n=4 -> 3 copies."""

    def test_value_needs_more_than_half_of_n(self):
        bc = make_bc()
        accept(bc, 1, 2, [1, 1, 0])
        # c1=2 < floor(4/2)+1=3: not justifiable as a step-3 value...
        assert not bc._is_valid(1, 3, 1)
        # ...but ⊥ is (the subset {1,1,0} has no strict majority of n).
        assert bc._is_valid(1, 3, None)

    def test_unanimous_step2_justifies_value_not_bottom(self):
        bc = make_bc()
        accept(bc, 1, 2, [1, 1, 1])
        assert bc._is_valid(1, 3, 1)
        assert not bc._is_valid(1, 3, None)

    def test_bottom_feasible_with_mixed_values(self):
        bc = make_bc()
        accept(bc, 1, 2, [1, 1, 0, 0])
        assert bc._is_valid(1, 3, None)

    def test_value_with_four_copies(self):
        bc = make_bc()
        accept(bc, 1, 2, [1, 1, 1, 0])
        assert bc._is_valid(1, 3, 1)
        assert not bc._is_valid(1, 3, 0)
        assert bc._is_valid(1, 3, None)  # subset {1,1,0} exists


class TestStep1NextRound:
    def test_adopt_rule(self):
        """f+1 = 2 copies at step 3 justify the value next round."""
        bc = make_bc()
        accept(bc, 1, 3, [1, 1, None])
        assert bc._is_valid(2, 1, 1)

    def test_coin_feasibility(self):
        """With enough ⊥s, any bit is justifiable via the coin branch."""
        bc = make_bc()
        accept(bc, 1, 3, [None, None, 1])
        assert bc._is_valid(2, 1, 0)
        assert bc._is_valid(2, 1, 1)

    def test_coin_branch_infeasible_after_strong_agreement(self):
        """Three 1s at step 3: 0 has neither f+1 support nor a coin
        subset (min(c1,f)+c⊥ = 1 < q), so 0 is unjustifiable."""
        bc = make_bc()
        accept(bc, 1, 3, [1, 1, 1])
        assert bc._is_valid(2, 1, 1)
        assert not bc._is_valid(2, 1, 0)

    def test_missing_previous_round(self):
        bc = make_bc()
        assert not bc._is_valid(2, 1, 1)


class TestPendingCascade:
    def test_acceptance_cascades_across_steps(self):
        """A step-2 value pending on step-1 evidence is accepted the
        moment the evidence arrives, and can then unlock step 3."""
        bc = make_bc()
        state = bc._round_state(1)
        state.broadcast_sent.add(1)
        # Step-2 and step-3 values arrive before any step-1 value.
        state.pending[2] = [(1, 1), (2, 1), (3, 1)]
        state.pending[3] = [(1, 1)]
        bc._drain_pending()
        assert state.accepted[2] == {}
        # Step-1 evidence lands; everything cascades.
        state.pending[1] = [(1, 1), (2, 1), (3, 1)]
        bc._drain_pending()
        assert len(state.accepted[2]) == 3
        assert len(state.accepted[3]) == 1
