"""Keys, MACs, hashing and coins."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.coin import LocalCoin, SharedCoinDealer
from repro.crypto.hashing import HASH_LEN, hash_bytes
from repro.crypto.keys import KEY_LEN, KeyStore, TrustedDealer
from repro.crypto.mac import mac, mac_vector, verify_mac

import random


class TestHashing:
    def test_fixed_length(self):
        assert len(hash_bytes(b"x")) == HASH_LEN

    def test_deterministic(self):
        assert hash_bytes(b"a", b"b") == hash_bytes(b"a", b"b")

    def test_different_inputs_differ(self):
        assert hash_bytes(b"a") != hash_bytes(b"b")

    def test_injective_part_boundaries(self):
        """Length prefixing: ("ab","c") must differ from ("a","bc")."""
        assert hash_bytes(b"ab", b"c") != hash_bytes(b"a", b"bc")

    def test_empty_parts(self):
        assert hash_bytes() != hash_bytes(b"")

    @given(st.binary(max_size=64), st.binary(max_size=64))
    @settings(max_examples=100)
    def test_property_concatenation_injective(self, a, b):
        if (a, b) != (b, a):
            assert hash_bytes(a, b) == hash_bytes(a, b)


class TestTrustedDealer:
    def test_pair_keys_symmetric(self):
        dealer = TrustedDealer(4, seed=b"s")
        for i in range(4):
            for j in range(4):
                assert dealer.pair_key(i, j) == dealer.pair_key(j, i)

    def test_keystores_share_pairwise_keys(self):
        dealer = TrustedDealer(4, seed=b"s")
        ks = [dealer.keystore_for(i) for i in range(4)]
        for i in range(4):
            for j in range(4):
                assert ks[i].key_for(j) == ks[j].key_for(i)

    def test_distinct_pairs_distinct_keys(self):
        dealer = TrustedDealer(4, seed=b"s")
        keys = {dealer.pair_key(i, j) for i in range(4) for j in range(i, 4)}
        assert len(keys) == 10  # C(4,2) + 4 self-keys

    def test_deterministic_with_seed(self):
        a = TrustedDealer(4, seed=b"same")
        b = TrustedDealer(4, seed=b"same")
        assert a.pair_key(0, 3) == b.pair_key(0, 3)

    def test_different_seeds_differ(self):
        a = TrustedDealer(4, seed=b"one")
        b = TrustedDealer(4, seed=b"two")
        assert a.pair_key(0, 3) != b.pair_key(0, 3)

    def test_random_mode_produces_keys(self):
        dealer = TrustedDealer(4)
        assert len(dealer.pair_key(1, 2)) == KEY_LEN

    def test_out_of_range_process(self):
        dealer = TrustedDealer(4, seed=b"s")
        with pytest.raises(ValueError):
            dealer.keystore_for(4)

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            TrustedDealer(0)


class TestKeyStore:
    def test_unknown_peer(self):
        store = KeyStore(0, {0: b"k0", 1: b"k1"})
        with pytest.raises(KeyError):
            store.key_for(9)

    def test_missing_self_key_rejected(self):
        with pytest.raises(ValueError):
            KeyStore(0, {1: b"k1"})

    def test_peers_sorted(self):
        store = KeyStore(1, {2: b"a", 0: b"b", 1: b"c"})
        assert store.peers == [0, 1, 2]


class TestMac:
    def test_verify_roundtrip(self):
        tag = mac(b"message", b"key")
        assert verify_mac(b"message", b"key", tag)

    def test_wrong_key_fails(self):
        tag = mac(b"message", b"key")
        assert not verify_mac(b"message", b"other", tag)

    def test_wrong_message_fails(self):
        tag = mac(b"message", b"key")
        assert not verify_mac(b"other", b"key", tag)

    def test_vector_layout(self, keystores4):
        vector = mac_vector(b"m", keystores4[2])
        assert len(vector) == 4
        # Entry j verifies at process j under the shared key.
        for j in range(4):
            assert verify_mac(b"m", keystores4[j].key_for(2), vector[j])

    def test_vector_entries_differ_across_peers(self, keystores4):
        vector = mac_vector(b"m", keystores4[0])
        assert len(set(vector)) == 4


class TestLocalCoin:
    def test_produces_bits(self):
        coin = LocalCoin(random.Random(1))
        tosses = {coin.toss(b"i", r) for r in range(64)}
        assert tosses == {0, 1}

    def test_roughly_unbiased(self):
        coin = LocalCoin(random.Random(2))
        total = sum(coin.toss(b"i", r) for r in range(2000))
        assert 800 < total < 1200

    def test_independent_coins_independent_streams(self):
        a = LocalCoin(random.Random(3))
        b = LocalCoin(random.Random(4))
        seq_a = [a.toss(b"", r) for r in range(64)]
        seq_b = [b.toss(b"", r) for r in range(64)]
        assert seq_a != seq_b

    def test_default_system_random(self):
        coin = LocalCoin()
        assert coin.toss(b"x", 0) in (0, 1)


class TestSharedCoin:
    def test_all_holders_agree(self):
        dealer = SharedCoinDealer(secret=b"s" * 32)
        coins = [dealer.coin_for(pid) for pid in range(4)]
        for round_number in range(32):
            tosses = {c.toss(b"inst", round_number) for c in coins}
            assert len(tosses) == 1

    def test_varies_across_rounds(self):
        coin = SharedCoinDealer(secret=b"s" * 32).coin_for(0)
        tosses = {coin.toss(b"inst", r) for r in range(64)}
        assert tosses == {0, 1}

    def test_varies_across_instances(self):
        coin = SharedCoinDealer(secret=b"s" * 32).coin_for(0)
        seq_a = [coin.toss(b"a", r) for r in range(64)]
        seq_b = [coin.toss(b"b", r) for r in range(64)]
        assert seq_a != seq_b

    def test_different_dealers_differ(self):
        a = SharedCoinDealer(secret=b"a" * 32).coin_for(0)
        b = SharedCoinDealer(secret=b"b" * 32).coin_for(0)
        assert [a.toss(b"i", r) for r in range(64)] != [
            b.toss(b"i", r) for r in range(64)
        ]
