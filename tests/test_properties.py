"""Property-based tests: protocol invariants under arbitrary schedules,
proposals and faults, driven by hypothesis."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.config import GroupConfig

from util import InstantNet, ShuffleNet, decisions_of

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@given(
    proposals=st.lists(st.integers(0, 1), min_size=4, max_size=4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=60, **COMMON)
def test_binary_consensus_agreement_and_validity(proposals, seed):
    """On any schedule: agreement always; validity when unanimous."""
    net = ShuffleNet(4, seed=seed)
    for stack in net.stacks:
        stack.create("bc", ("bc",))
    for pid, stack in enumerate(net.stacks):
        stack.instance_at(("bc",)).propose(proposals[pid])
    net.run()
    decisions = decisions_of(net, ("bc",))
    assert len(set(decisions)) == 1
    if len(set(proposals)) == 1:
        assert decisions[0] == proposals[0]
    else:
        assert decisions[0] in (0, 1)


@given(
    proposals=st.lists(st.integers(0, 1), min_size=4, max_size=4),
    seed=st.integers(0, 10_000),
    crashed=st.integers(0, 3),
)
@settings(max_examples=40, **COMMON)
def test_binary_consensus_with_a_crash(proposals, seed, crashed):
    net = ShuffleNet(4, seed=seed, crashed={crashed})
    for pid, stack in enumerate(net.stacks):
        if pid != crashed:
            stack.create("bc", ("bc",))
    for pid, stack in enumerate(net.stacks):
        if pid != crashed:
            stack.instance_at(("bc",)).propose(proposals[pid])
    net.run()
    decisions = decisions_of(net, ("bc",))
    assert len(decisions) == 3
    assert len(set(decisions)) == 1
    live = [proposals[pid] for pid in range(4) if pid != crashed]
    if len(set(live)) == 1:
        assert decisions[0] == live[0]


@given(
    values=st.lists(st.binary(min_size=0, max_size=16), min_size=4, max_size=4),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=50, **COMMON)
def test_mvc_decision_is_proposal_or_default(values, seed):
    net = ShuffleNet(4, seed=seed)
    for stack in net.stacks:
        stack.create("mvc", ("m",))
    for pid, stack in enumerate(net.stacks):
        stack.instance_at(("m",)).propose(values[pid])
    net.run()
    decisions = decisions_of(net, ("m",))
    assert len(set(map(repr, decisions))) == 1  # agreement
    assert decisions[0] is None or decisions[0] in values  # validity
    if len({bytes(v) for v in values}) == 1:
        assert decisions[0] == values[0]  # unanimity


@given(seed=st.integers(0, 10_000))
@settings(max_examples=30, **COMMON)
def test_vector_consensus_slot_integrity(seed):
    proposals = [b"p0", b"p1", b"p2", b"p3"]
    net = ShuffleNet(4, seed=seed)
    for stack in net.stacks:
        stack.create("vc", ("v",))
    for pid, stack in enumerate(net.stacks):
        stack.instance_at(("v",)).propose(proposals[pid])
    net.run()
    decisions = decisions_of(net, ("v",))
    vector = decisions[0]
    assert all(d == vector for d in decisions)
    assert len(vector) == 4
    assert sum(1 for slot in vector if slot is not None) >= 2
    for pid, slot in enumerate(vector):
        assert slot in (None, proposals[pid])


@given(
    seed=st.integers(0, 10_000),
    message_counts=st.lists(st.integers(0, 4), min_size=4, max_size=4),
)
@settings(max_examples=40, **COMMON)
def test_atomic_broadcast_total_order_property(seed, message_counts):
    net = ShuffleNet(4, seed=seed)
    orders = {}
    for pid, stack in enumerate(net.stacks):
        ab = stack.create("ab", ("a",))
        orders[pid] = []
        ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
    expected = set()
    for pid, count in enumerate(message_counts):
        for k in range(count):
            net.stacks[pid].instance_at(("a",)).broadcast(b"m%d-%d" % (pid, k))
            expected.add((pid, k))
    net.run()
    reference = orders[0]
    # Agreement on order, no duplicates, no losses.
    assert all(order == reference for order in orders.values())
    assert len(reference) == len(set(reference)) == len(expected)
    assert set(reference) == expected


@given(seed=st.integers(0, 10_000), crashed=st.integers(0, 3))
@settings(max_examples=25, **COMMON)
def test_atomic_broadcast_with_crash_property(seed, crashed):
    net = ShuffleNet(4, seed=seed, crashed={crashed})
    orders = {}
    for pid, stack in enumerate(net.stacks):
        if pid == crashed:
            continue
        ab = stack.create("ab", ("a",))
        orders[pid] = []
        ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
    for pid in range(4):
        if pid != crashed:
            net.stacks[pid].instance_at(("a",)).broadcast(b"m%d" % pid)
    net.run()
    reference = next(iter(orders.values()))
    assert all(order == reference for order in orders.values())
    assert len(reference) == 3


@given(
    n=st.sampled_from([4, 5, 6, 7]),
    seed=st.integers(0, 3_000),
)
@settings(max_examples=25, **COMMON)
def test_reliable_broadcast_totality_across_group_sizes(n, seed):
    net = ShuffleNet(n, seed=seed)
    got = {}
    for pid, stack in enumerate(net.stacks):
        rb = stack.create("rb", ("r",), sender=0)
        rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
    net.stacks[0].instance_at(("r",)).broadcast(b"m")
    net.run()
    assert got == {pid: b"m" for pid in range(n)}


@given(
    payload=st.binary(min_size=0, max_size=512),
    sender=st.integers(0, 3),
    seed=st.integers(0, 3_000),
)
@settings(max_examples=40, **COMMON)
def test_echo_broadcast_payload_fidelity(payload, sender, seed):
    net = ShuffleNet(4, seed=seed)
    got = {}
    for pid, stack in enumerate(net.stacks):
        eb = stack.create("eb", ("e",), sender=sender)
        eb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
    net.stacks[sender].instance_at(("e",)).broadcast(payload)
    net.run()
    assert got == {pid: payload for pid in range(4)}


@given(n=st.integers(1, 40))
@settings(max_examples=40, **COMMON)
def test_quorum_sanity_for_any_group_size(n):
    config = GroupConfig(n)
    assert config.f == (n - 1) // 3
    assert config.wait_quorum >= config.ready_quorum or config.f == 0
    assert config.echo_quorum <= n
    assert config.value_quorum >= config.f + 1 or config.f == 0
