"""Atomic broadcast: total order, agreement batching, dynamic instance
creation, and hostile inputs."""

import pytest

from repro.core.atomic_broadcast import AbDelivery

from util import InstantNet, ShuffleNet


def setup_ab(net, path=("ab",)):
    orders = {}
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        ab = stack.create("ab", path)
        orders[pid] = []
        ab.on_deliver = (
            lambda _i, d, pid=pid: orders[pid].append((d.sender, d.rbid, d.payload))
        )
    return orders


class TestTotalOrder:
    def test_single_message(self):
        net = InstantNet(4)
        orders = setup_ab(net)
        net.stacks[0].instance_at(("ab",)).broadcast(b"solo")
        net.run()
        assert all(o == [(0, 0, b"solo")] for o in orders.values())

    def test_identical_order_everywhere(self):
        net = InstantNet(4)
        orders = setup_ab(net)
        for pid in range(4):
            for k in range(3):
                net.stacks[pid].instance_at(("ab",)).broadcast(b"m%d%d" % (pid, k))
        net.run()
        reference = orders[0]
        assert len(reference) == 12
        assert all(o == reference for o in orders.values())

    def test_identical_order_on_shuffled_schedules(self):
        for seed in range(12):
            net = ShuffleNet(4, seed=seed)
            orders = setup_ab(net)
            for pid in range(4):
                net.stacks[pid].instance_at(("ab",)).broadcast(b"x%d" % pid)
            net.run()
            reference = orders[0]
            assert len(reference) == 4, f"seed {seed}"
            assert all(o == reference for o in orders.values()), f"seed {seed}"

    def test_no_duplicates_no_losses(self):
        net = InstantNet(4)
        orders = setup_ab(net)
        expected = set()
        for pid in range(4):
            for k in range(5):
                net.stacks[pid].instance_at(("ab",)).broadcast(b"p%d-%d" % (pid, k))
                expected.add((pid, k))
        net.run()
        for order in orders.values():
            assert {(s, r) for s, r, _ in order} == expected
            assert len(order) == len(expected)

    def test_sequence_numbers_dense(self):
        net = InstantNet(4)
        sequences = []
        ab = net.stacks[0].create("ab", ("ab",))
        ab.on_deliver = lambda _i, d: sequences.append(d.sequence)
        for pid in range(1, 4):
            net.stacks[pid].create("ab", ("ab",))
        for pid in range(4):
            net.stacks[pid].instance_at(("ab",)).broadcast(b"m")
        net.run()
        assert sequences == list(range(4))

    def test_broadcast_returns_id(self):
        net = InstantNet(4)
        setup_ab(net)
        assert net.stacks[2].instance_at(("ab",)).broadcast(b"m") == (2, 0)
        assert net.stacks[2].instance_at(("ab",)).broadcast(b"m") == (2, 1)

    def test_crashed_sender_messages_may_be_lost_but_order_agrees(self):
        net = InstantNet(4, crashed={3})
        orders = setup_ab(net)
        for pid in range(3):
            net.stacks[pid].instance_at(("ab",)).broadcast(b"c%d" % pid)
        net.run()
        reference = orders[0]
        assert len(reference) == 3
        assert all(o == reference for o in orders.values())

    def test_second_wave_after_quiescence(self):
        """Rounds keep working after the system goes idle."""
        net = InstantNet(4)
        orders = setup_ab(net)
        net.stacks[0].instance_at(("ab",)).broadcast(b"one")
        net.run()
        net.stacks[1].instance_at(("ab",)).broadcast(b"two")
        net.run()
        for order in orders.values():
            assert [payload for _, _, payload in order] == [b"one", b"two"]

    def test_batching_uses_few_agreements(self):
        """A burst of messages is ordered by O(1) agreements, not O(k)."""
        net = InstantNet(4)
        orders = setup_ab(net)
        for pid in range(4):
            for k in range(10):
                net.stacks[pid].instance_at(("ab",)).broadcast(b"b%d%d" % (pid, k))
        net.run()
        assert len(orders[0]) == 40
        rounds = net.stacks[0].instance_at(("ab",)).round
        assert rounds <= 4  # 40 messages, a handful of agreements

    def test_larger_group(self):
        net = InstantNet(7)
        orders = setup_ab(net)
        for pid in range(7):
            net.stacks[pid].instance_at(("ab",)).broadcast(b"m%d" % pid)
        net.run()
        assert len(orders[0]) == 7
        assert all(o == orders[0] for o in orders.values())


class TestHostileInputs:
    def test_malformed_vect_payload_ignored(self):
        from repro.core.reliable_broadcast import MSG_INIT

        net = InstantNet(4)
        orders = setup_ab(net)
        # Byzantine p3 broadcasts a junk AB_VECT for round 0.
        for dest in range(3):
            net.stacks[3].send_frame(dest, ("ab", "vect", 0, 3), MSG_INIT, b"junk")
        for pid in range(3):
            net.stacks[pid].instance_at(("ab",)).broadcast(b"v%d" % pid)
        net.run()
        reference = orders[0]
        assert len(reference) == 3
        assert all(orders[pid] == reference for pid in range(3))

    def test_fake_ids_in_vect_do_not_block(self):
        """Identifiers nobody received never reach the f+1 support bar,
        so they are not chosen and cannot wedge delivery."""
        from repro.core.reliable_broadcast import MSG_INIT

        net = InstantNet(4)
        orders = setup_ab(net)
        for dest in range(3):
            net.stacks[3].send_frame(
                dest, ("ab", "vect", 0, 3), MSG_INIT, [[2, 999], [1, 777]]
            )
        for pid in range(3):
            net.stacks[pid].instance_at(("ab",)).broadcast(b"real%d" % pid)
        net.run()
        assert len(orders[0]) == 3
        delivered_ids = {(s, r) for s, r, _ in orders[0]}
        assert (2, 999) not in delivered_ids

    def test_msg_window_bounds_instance_creation(self):
        from repro.core.reliable_broadcast import MSG_INIT

        net = InstantNet(4)
        for pid, stack in enumerate(net.stacks):
            stack.create("ab", ("ab",), msg_window=4)
        before = net.stacks[0].live_instances
        for rbid in range(50):
            net.stacks[3].send_frame(0, ("ab", "msg", 3, rbid), MSG_INIT, b"spam")
        net.run()
        created = net.stacks[0].live_instances - before
        assert created <= 4

    def test_negative_rbid_rejected(self):
        from repro.core.reliable_broadcast import MSG_INIT

        net = InstantNet(4)
        setup_ab(net)
        before = net.stacks[0].live_instances
        net.stacks[3].send_frame(0, ("ab", "msg", 3, -5), MSG_INIT, b"spam")
        net.run()
        assert net.stacks[0].live_instances == before  # parked, not created

    def test_duplicate_ids_in_vect_rejected(self):
        net = InstantNet(4)
        setup_ab(net)
        ab = net.stacks[0].instance_at(("ab",))
        assert ab._parse_id_list([[1, 2], [1, 2]]) is None

    def test_id_list_parser_shapes(self):
        net = InstantNet(4)
        setup_ab(net)
        ab = net.stacks[0].instance_at(("ab",))
        assert ab._parse_id_list([[0, 1], [3, 0]]) == [(0, 1), (3, 0)]
        assert ab._parse_id_list("junk") is None
        assert ab._parse_id_list([[0]]) is None
        assert ab._parse_id_list([[9, 0]]) is None  # unknown pid
        assert ab._parse_id_list([[0, -1]]) is None
        assert ab._parse_id_list([]) == []


class TestDeliveryDataclass:
    def test_msg_id_property(self):
        d = AbDelivery(sender=2, rbid=7, payload=b"x", sequence=0)
        assert d.msg_id == (2, 7)

    def test_frozen(self):
        d = AbDelivery(sender=2, rbid=7, payload=b"x", sequence=0)
        with pytest.raises(AttributeError):
            d.sender = 3  # type: ignore[misc]
