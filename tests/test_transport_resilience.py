"""Transport resilience: late starters, reconnection, slow peers."""

import asyncio
import socket

import pytest

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.transport.tcp import PeerAddress, RitasNode


@pytest.fixture
def group4():
    return GroupConfig(4), TrustedDealer(4, seed=b"resilience")


def make_node(config, dealer, addresses, pid):
    return RitasNode(
        config,
        pid,
        addresses,
        dealer.keystore_for(pid),
        connect_retry_s=0.05,
    )


def reserve_port() -> int:
    """An ephemeral port for a process that must be addressable before
    it binds (the kernel rarely reassigns it in the window)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def start_staged(nodes, extra_addresses=()):
    """Bind every node on port 0, then share bound ports + connect.

    *extra_addresses* extends the map for processes not yet started
    (late starters, crashed peers)."""
    for node in nodes:
        await node.listen()
    addresses = [
        PeerAddress("127.0.0.1", node.bound_port) for node in nodes
    ] + list(extra_addresses)
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()
    return addresses


class TestResilience:
    def test_late_starting_peer_joins(self, group4):
        """Three nodes come up, start a broadcast, the fourth joins late:
        connect retries + the OOC table let it catch up."""
        config, dealer = group4

        async def scenario():
            blank = [PeerAddress("127.0.0.1", 0)] * 4
            nodes = [make_node(config, dealer, blank, pid) for pid in range(3)]
            late_port = reserve_port()
            addresses = await start_staged(
                nodes, [PeerAddress("127.0.0.1", late_port)]
            )
            got = {pid: [] for pid in range(4)}
            try:
                for pid, node in enumerate(nodes):
                    ab = node.stack.create("ab", ("t",))
                    ab.on_deliver = lambda _i, d, pid=pid: got[pid].append(d.payload)
                nodes[0].stack.instance_at(("t",)).broadcast(b"early")
                await asyncio.sleep(0.3)
                late = make_node(config, dealer, addresses, 3)
                await late.start()
                nodes.append(late)
                ab = late.stack.create("ab", ("t",))
                ab.on_deliver = lambda _i, d: got[3].append(d.payload)
                nodes[1].stack.instance_at(("t",)).broadcast(b"late")
                for _ in range(300):
                    if all(len(msgs) == 2 for msgs in got.values()):
                        break
                    await asyncio.sleep(0.02)
                assert all(msgs == got[0] for msgs in got.values()), got
                assert set(got[0]) == {b"early", b"late"}
            finally:
                for node in nodes:
                    await node.close()

        asyncio.run(scenario())

    def test_sender_queue_survives_peer_downtime(self, group4):
        """Frames queued toward a dead peer do not block the others."""
        config, dealer = group4

        async def scenario():
            blank = [PeerAddress("127.0.0.1", 0)] * 4
            nodes = [make_node(config, dealer, blank, pid) for pid in range(3)]
            await start_staged(
                nodes, [PeerAddress("127.0.0.1", reserve_port())]
            )
            got = {pid: [] for pid in range(3)}
            try:
                # p3 never starts; the group is still live (f = 1).
                for pid, node in enumerate(nodes):
                    ab = node.stack.create("ab", ("t",))
                    ab.on_deliver = lambda _i, d, pid=pid: got[pid].append(d.payload)
                for pid, node in enumerate(nodes):
                    node.stack.instance_at(("t",)).broadcast(b"m%d" % pid)
                for _ in range(300):
                    if all(len(msgs) == 3 for msgs in got.values()):
                        break
                    await asyncio.sleep(0.02)
                assert all(msgs == got[0] for msgs in got.values())
                assert len(got[0]) == 3
            finally:
                for node in nodes:
                    await node.close()

        asyncio.run(scenario())

    def test_close_is_idempotent(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] * 4
            node = make_node(config, dealer, addresses, 0)
            await node.start()
            await node.close()
            await node.close()

        asyncio.run(scenario())

    def test_outbox_after_close_is_noop(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] * 4
            node = make_node(config, dealer, addresses, 0)
            await node.start()
            await node.close()
            node.stack.send_frame(1, ("t",), 0, b"x")  # silently dropped

        asyncio.run(scenario())


class TestReconnectBackoff:
    def _node(self, config, pid=0):
        dealer = TrustedDealer(4, seed=b"backoff")
        addresses = [PeerAddress("127.0.0.1", 0)] * 4
        return RitasNode(config, pid, addresses, dealer.keystore_for(pid))

    def test_delay_doubles_up_to_cap(self):
        config = GroupConfig(
            4, reconnect_base_s=0.05, reconnect_max_s=0.4, reconnect_jitter=0.0
        )
        node = self._node(config)
        delays = [node._reconnect_delay(k) for k in range(1, 7)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]
        assert node.reconnect_delays == delays

    def test_jitter_stays_within_factor(self):
        config = GroupConfig(
            4, reconnect_base_s=0.1, reconnect_max_s=5.0, reconnect_jitter=0.5
        )
        node = self._node(config)
        for _ in range(50):
            delay = node._reconnect_delay(1)
            assert 0.1 <= delay <= 0.1 * 1.5

    def test_explicit_retry_overrides_config_base(self):
        config = GroupConfig(4, reconnect_base_s=0.9, reconnect_jitter=0.0)
        dealer = TrustedDealer(4, seed=b"backoff")
        addresses = [PeerAddress("127.0.0.1", 0)] * 4
        node = RitasNode(
            config, 0, addresses, dealer.keystore_for(0), connect_retry_s=0.05
        )
        assert node._reconnect_delay(1) == 0.05

    def test_retry_budget_sheds_queued_frames(self):
        """Past the budget, frames toward a presumed-dead peer are
        dropped (bounded memory) while probing continues."""
        config = GroupConfig(
            4,
            reconnect_base_s=0.01,
            reconnect_max_s=0.02,
            reconnect_jitter=0.0,
            reconnect_retry_budget=2,
        )
        dealer = TrustedDealer(4, seed=b"budget")

        async def scenario():
            # Peers get reserved-but-unbound ports: connects fail fast.
            addresses = [PeerAddress("127.0.0.1", 0)] + [
                PeerAddress("127.0.0.1", reserve_port()) for _ in range(3)
            ]
            node = RitasNode(config, 0, addresses, dealer.keystore_for(0))
            await node.listen()
            await node.connect()
            try:
                for _ in range(5):
                    node.stack.send_frame(1, ("t",), 0, b"x")
                for _ in range(300):
                    if node.frames_dropped_reconnect >= 5:
                        break
                    await asyncio.sleep(0.01)
                assert node.frames_dropped_reconnect >= 5
                assert node.connect_attempts >= 3
                # Backoff grew between consecutive failures (the three
                # sender tasks interleave, so check the range, not
                # adjacent entries).
                for _ in range(300):
                    if 0.02 in node.reconnect_delays:
                        break
                    await asyncio.sleep(0.01)
                assert node.reconnect_delays[0] == 0.01
                assert 0.02 in node.reconnect_delays
            finally:
                await node.close()

        asyncio.run(scenario())

    def test_dead_peer_shed_releases_queue_memory(self):
        """The budget shed must actually release the queued frames: the
        per-peer send queue reads empty (0 frames, 0 bytes) afterwards
        and the shed is visible in the node and stack counters."""
        config = GroupConfig(
            4,
            reconnect_base_s=0.01,
            reconnect_max_s=0.02,
            reconnect_jitter=0.0,
            reconnect_retry_budget=1,
        )
        dealer = TrustedDealer(4, seed=b"shed")

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] + [
                PeerAddress("127.0.0.1", reserve_port()) for _ in range(3)
            ]
            node = RitasNode(config, 0, addresses, dealer.keystore_for(0))
            await node.listen()
            await node.connect()
            try:
                for _ in range(8):
                    node.stack.send_frame(1, ("t",), 0, b"payload")
                assert node.send_queue_depth(1)[0] > 0  # parked toward p1
                for _ in range(300):
                    if node.frames_dropped_reconnect >= 8:
                        break
                    await asyncio.sleep(0.01)
                assert node.frames_dropped_reconnect >= 8
                assert node.send_queue_depth(1) == (0, 0)
                assert node.frames_shed >= 8
                assert node.stack.stats.sends_shed >= 8
            finally:
                await node.close()

        asyncio.run(scenario())

    def test_ticker_fires_until_close(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] * 4
            node = make_node(config, dealer, addresses, 0)
            await node.listen()
            ticks = []
            node.add_ticker(0.01, lambda: ticks.append(1))
            await asyncio.sleep(0.1)
            assert len(ticks) >= 3
            await node.close()
            settled = len(ticks)
            await asyncio.sleep(0.05)
            assert len(ticks) == settled

        asyncio.run(scenario())

    def test_ticker_rejects_bad_period(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] * 4
            node = make_node(config, dealer, addresses, 0)
            with pytest.raises(ValueError):
                node.add_ticker(0.0, lambda: None)

        asyncio.run(scenario())
