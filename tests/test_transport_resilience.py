"""Transport resilience: late starters, reconnection, slow peers."""

import asyncio
import socket

import pytest

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.transport.tcp import PeerAddress, RitasNode


@pytest.fixture
def group4():
    return GroupConfig(4), TrustedDealer(4, seed=b"resilience")


def make_node(config, dealer, addresses, pid):
    return RitasNode(
        config,
        pid,
        addresses,
        dealer.keystore_for(pid),
        connect_retry_s=0.05,
    )


def reserve_port() -> int:
    """An ephemeral port for a process that must be addressable before
    it binds (the kernel rarely reassigns it in the window)."""
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def start_staged(nodes, extra_addresses=()):
    """Bind every node on port 0, then share bound ports + connect.

    *extra_addresses* extends the map for processes not yet started
    (late starters, crashed peers)."""
    for node in nodes:
        await node.listen()
    addresses = [
        PeerAddress("127.0.0.1", node.bound_port) for node in nodes
    ] + list(extra_addresses)
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()
    return addresses


class TestResilience:
    def test_late_starting_peer_joins(self, group4):
        """Three nodes come up, start a broadcast, the fourth joins late:
        connect retries + the OOC table let it catch up."""
        config, dealer = group4

        async def scenario():
            blank = [PeerAddress("127.0.0.1", 0)] * 4
            nodes = [make_node(config, dealer, blank, pid) for pid in range(3)]
            late_port = reserve_port()
            addresses = await start_staged(
                nodes, [PeerAddress("127.0.0.1", late_port)]
            )
            got = {pid: [] for pid in range(4)}
            try:
                for pid, node in enumerate(nodes):
                    ab = node.stack.create("ab", ("t",))
                    ab.on_deliver = lambda _i, d, pid=pid: got[pid].append(d.payload)
                nodes[0].stack.instance_at(("t",)).broadcast(b"early")
                await asyncio.sleep(0.3)
                late = make_node(config, dealer, addresses, 3)
                await late.start()
                nodes.append(late)
                ab = late.stack.create("ab", ("t",))
                ab.on_deliver = lambda _i, d: got[3].append(d.payload)
                nodes[1].stack.instance_at(("t",)).broadcast(b"late")
                for _ in range(300):
                    if all(len(msgs) == 2 for msgs in got.values()):
                        break
                    await asyncio.sleep(0.02)
                assert all(msgs == got[0] for msgs in got.values()), got
                assert set(got[0]) == {b"early", b"late"}
            finally:
                for node in nodes:
                    await node.close()

        asyncio.run(scenario())

    def test_sender_queue_survives_peer_downtime(self, group4):
        """Frames queued toward a dead peer do not block the others."""
        config, dealer = group4

        async def scenario():
            blank = [PeerAddress("127.0.0.1", 0)] * 4
            nodes = [make_node(config, dealer, blank, pid) for pid in range(3)]
            await start_staged(
                nodes, [PeerAddress("127.0.0.1", reserve_port())]
            )
            got = {pid: [] for pid in range(3)}
            try:
                # p3 never starts; the group is still live (f = 1).
                for pid, node in enumerate(nodes):
                    ab = node.stack.create("ab", ("t",))
                    ab.on_deliver = lambda _i, d, pid=pid: got[pid].append(d.payload)
                for pid, node in enumerate(nodes):
                    node.stack.instance_at(("t",)).broadcast(b"m%d" % pid)
                for _ in range(300):
                    if all(len(msgs) == 3 for msgs in got.values()):
                        break
                    await asyncio.sleep(0.02)
                assert all(msgs == got[0] for msgs in got.values())
                assert len(got[0]) == 3
            finally:
                for node in nodes:
                    await node.close()

        asyncio.run(scenario())

    def test_close_is_idempotent(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] * 4
            node = make_node(config, dealer, addresses, 0)
            await node.start()
            await node.close()
            await node.close()

        asyncio.run(scenario())

    def test_outbox_after_close_is_noop(self, group4):
        config, dealer = group4

        async def scenario():
            addresses = [PeerAddress("127.0.0.1", 0)] * 4
            node = make_node(config, dealer, addresses, 0)
            await node.start()
            await node.close()
            node.stack.send_frame(1, ("t",), 0, b"x")  # silently dropped

        asyncio.run(scenario())
