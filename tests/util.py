"""Test utilities: lightweight networks for exercising the sans-IO stack.

Two runtimes besides the full LAN simulation:

- :class:`InstantNet` -- synchronous, delivers every frame immediately
  in send order.  Fast unit-level runs.
- :class:`ShuffleNet` -- keeps all in-flight frames in a pool and lets a
  seeded RNG pick which one to deliver next, preserving only per-pair
  FIFO (the TCP guarantee).  This emulates an adversarial-ish scheduler
  and is what the property-based consensus tests run on: agreement and
  validity must hold on *every* schedule.
"""

from __future__ import annotations

import random
from collections import deque

from repro.core.config import GroupConfig
from repro.core.stack import ProtocolFactory, Stack
from repro.crypto.coin import SharedCoinDealer
from repro.crypto.keys import TrustedDealer


class _BaseNet:
    """Shared plumbing: builds one stack per process."""

    def __init__(
        self,
        n: int = 4,
        *,
        seed: int = 0,
        factories: dict[int, ProtocolFactory] | None = None,
        crashed: set[int] | None = None,
        config: GroupConfig | None = None,
    ):
        self.config = config if config is not None else GroupConfig(n)
        n = self.config.num_processes
        self.crashed = set(crashed or ())
        dealer = TrustedDealer(n, seed=str(seed).encode())
        coin_dealer = (
            SharedCoinDealer(secret=f"coin/{seed}".encode())
            if self.config.bc_coin == "shared"
            else None
        )
        self.stacks: list[Stack] = []
        for pid in range(n):
            factory = (factories or {}).get(pid)
            stack = Stack(
                self.config,
                pid,
                outbox=self._make_outbox(pid),
                keystore=dealer.keystore_for(pid),
                factory=factory,
                rng=random.Random(f"{seed}/{pid}"),
                coin=coin_dealer.coin_for(pid) if coin_dealer else None,
            )
            self.stacks.append(stack)

    def _make_outbox(self, src: int):
        def outbox(dest: int, data: bytes) -> None:
            self.enqueue(src, dest, data)

        return outbox

    def enqueue(self, src: int, dest: int, data: bytes) -> None:
        raise NotImplementedError

    def crash(self, pid: int) -> None:
        self.crashed.add(pid)


class InstantNet(_BaseNet):
    """Delivers frames breadth-first in send order (deterministic)."""

    def __init__(self, n: int = 4, **kwargs):
        self.queue: deque[tuple[int, int, bytes]] = deque()
        super().__init__(n, **kwargs)

    def enqueue(self, src: int, dest: int, data: bytes) -> None:
        if src in self.crashed:
            return
        self.queue.append((src, dest, data))

    def run(self, max_frames: int = 2_000_000) -> int:
        """Deliver until quiescent; returns frames delivered."""
        delivered = 0
        while self.queue and delivered < max_frames:
            src, dest, data = self.queue.popleft()
            delivered += 1
            if dest in self.crashed:
                continue
            self.stacks[dest].receive(src, data)
        if self.queue:
            raise RuntimeError("frame budget exhausted; likely a protocol loop")
        return delivered


class ShuffleNet(_BaseNet):
    """Delivers frames in a random order (per-pair FIFO preserved)."""

    def __init__(self, n: int = 4, *, seed: int = 0, **kwargs):
        self.pairs: dict[tuple[int, int], deque[bytes]] = {}
        self.rng = random.Random(f"schedule/{seed}")
        super().__init__(n, seed=seed, **kwargs)

    def enqueue(self, src: int, dest: int, data: bytes) -> None:
        if src in self.crashed:
            return
        self.pairs.setdefault((src, dest), deque()).append(data)

    def pending(self) -> int:
        return sum(len(q) for q in self.pairs.values())

    def step(self) -> bool:
        """Deliver one frame from a randomly chosen nonempty pair."""
        live = [pair for pair, q in self.pairs.items() if q and pair[1] not in self.crashed]
        if not live:
            # Drain frames addressed to crashed processes so quiescence
            # is detectable.
            for q in self.pairs.values():
                q.clear()
            return False
        src, dest = self.rng.choice(live)
        data = self.pairs[(src, dest)].popleft()
        self.stacks[dest].receive(src, data)
        return True

    def run(self, max_frames: int = 2_000_000) -> int:
        delivered = 0
        while self.step():
            delivered += 1
            if delivered >= max_frames:
                raise RuntimeError("frame budget exhausted; likely a protocol loop")
        return delivered


def decisions_of(net: _BaseNet, path: tuple, attr: str = "decision") -> list:
    """Collect a per-process attribute of the instance at *path*."""
    values = []
    for pid in range(net.config.num_processes):
        if pid in net.crashed:
            continue
        instance = net.stacks[pid].instance_at(path)
        values.append(None if instance is None else getattr(instance, attr))
    return values
