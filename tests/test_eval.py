"""The evaluation harness: methodology checks and paper-shape assertions.

These are the repository's "does the reproduction reproduce" tests --
quick versions of the claims EXPERIMENTS.md documents, kept small enough
for CI.
"""

import pytest

from repro.eval.atomic_burst import run_burst
from repro.eval.paper_data import TABLE1_US
from repro.eval.report import (
    format_burst_sweep,
    format_fig7,
    format_table1,
    tmax_by_size,
)
from repro.eval.stack_analysis import (
    PROTOCOL_ORDER,
    latency_table,
    measure_protocol_latency,
)


@pytest.fixture(scope="module")
def table1_rows():
    return latency_table(runs=2, seed=3)


class TestTable1:
    def test_all_protocols_measured(self, table1_rows):
        assert [row.protocol for row in table1_rows] == list(PROTOCOL_ORDER)

    def test_latency_ordering_matches_paper(self, table1_rows):
        """EB < RB < BC < MVC < VC < AB, both with and without IPSec."""
        with_ipsec = [row.with_ipsec_us for row in table1_rows]
        without = [row.without_ipsec_us for row in table1_rows]
        assert with_ipsec == sorted(with_ipsec)
        assert without == sorted(without)

    def test_ipsec_always_costs(self, table1_rows):
        for row in table1_rows:
            assert 0.0 < row.ipsec_overhead < 1.0

    def test_ratios_within_2x_of_paper(self, table1_rows):
        """Shape: each adjacent-layer latency ratio within 2x of paper's."""
        ours = {row.protocol: row.with_ipsec_us for row in table1_rows}
        paper = {proto: TABLE1_US[proto]["ipsec"] for proto in PROTOCOL_ORDER}
        for upper, lower in [("bc", "rb"), ("mvc", "bc"), ("vc", "mvc"), ("ab", "mvc")]:
            ours_ratio = ours[upper] / ours[lower]
            paper_ratio = paper[upper] / paper[lower]
            assert 0.5 < ours_ratio / paper_ratio < 2.0, (upper, lower)

    def test_absolute_within_3x_of_paper(self, table1_rows):
        for row in table1_rows:
            paper_value = TABLE1_US[row.protocol]["ipsec"]
            assert paper_value / 3 < row.with_ipsec_us < paper_value * 3

    def test_measure_rejects_unknown_protocol(self):
        with pytest.raises(ValueError):
            measure_protocol_latency("nope")

    def test_report_renders(self, table1_rows):
        text = format_table1(table1_rows)
        assert "Reliable Broadcast" in text
        assert "paper" in text


class TestBurstMethodology:
    def test_result_fields_consistent(self):
        result = run_burst(16, 10, "failure-free", seed=7)
        assert result.delivered == 16
        assert result.throughput_msgs_s == pytest.approx(
            16 / result.latency_s
        )
        assert 0.0 <= result.agreement_cost <= 1.0
        assert result.agreement_broadcasts <= result.total_broadcasts

    def test_all_faultloads_run(self):
        for faultload in ("failure-free", "fail-stop", "byzantine"):
            result = run_burst(8, 10, faultload, seed=7)
            assert result.delivered == 8
            assert result.faultload == faultload

    def test_unknown_faultload_rejected(self):
        with pytest.raises(ValueError):
            run_burst(8, 10, "meteor-strike")

    def test_observer_must_be_correct(self):
        with pytest.raises(ValueError):
            run_burst(8, 10, "fail-stop", observer=3)

    def test_one_round_consensus_claim(self):
        """Section 4.3: all consensus decides in one round, all faultloads."""
        for faultload in ("failure-free", "fail-stop", "byzantine"):
            result = run_burst(32, 10, faultload, seed=7)
            assert result.max_bc_rounds == 1, faultload
            assert result.mvc_default_decisions == 0, faultload

    def test_two_agreements_per_burst_claim(self):
        result = run_burst(64, 10, "failure-free", seed=7)
        assert result.agreements <= 3

    def test_fail_stop_faster_claim(self):
        free = run_burst(64, 10, "failure-free", seed=7)
        stop = run_burst(64, 10, "fail-stop", seed=7)
        assert stop.latency_s < free.latency_s

    def test_byzantine_close_to_failure_free_claim(self):
        free = run_burst(64, 10, "failure-free", seed=7)
        byz = run_burst(64, 10, "byzantine", seed=7)
        assert abs(byz.latency_s / free.latency_s - 1) < 0.25

    def test_agreement_cost_dilutes_claim(self):
        small = run_burst(4, 10, "failure-free", seed=7)
        large = run_burst(256, 10, "failure-free", seed=7)
        assert small.agreement_cost > 0.8
        assert large.agreement_cost < 0.2
        assert large.agreement_cost < small.agreement_cost

    def test_throughput_decreases_with_message_size(self):
        t_small = run_burst(64, 10, "failure-free", seed=7).throughput_msgs_s
        t_large = run_burst(64, 10000, "failure-free", seed=7).throughput_msgs_s
        assert t_large < t_small

    def test_reports_render(self):
        results = [run_burst(k, 10, "failure-free", seed=7) for k in (4, 16)]
        assert "latency" in format_burst_sweep(results, "t")
        assert "paper anchors" in format_fig7(results)
        assert tmax_by_size(results)[10] > 0
