"""Atomic broadcast garbage collection (gc_rounds) on long sessions."""

import pytest

from util import InstantNet, ShuffleNet


def setup(net, gc_rounds):
    orders = {}
    for pid, stack in enumerate(net.stacks):
        ab = stack.create("ab", ("g",), gc_rounds=gc_rounds)
        orders[pid] = []
        ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
    return orders


class TestGc:
    def test_gc_rounds_lower_bound(self):
        net = InstantNet(4)
        with pytest.raises(ValueError):
            net.stacks[0].create("ab", ("g",), gc_rounds=1)

    def test_correctness_unchanged_under_gc(self):
        for seed in range(6):
            net = ShuffleNet(4, seed=seed)
            orders = setup(net, gc_rounds=2)
            for wave in range(6):
                for pid in range(4):
                    net.stacks[pid].instance_at(("g",)).broadcast(
                        b"w%d-%d" % (wave, pid)
                    )
                net.run()
            reference = orders[0]
            assert len(reference) == 24, f"seed {seed}"
            assert all(o == reference for o in orders.values()), f"seed {seed}"

    def test_instances_are_actually_collected(self):
        net = InstantNet(4)
        setup(net, gc_rounds=2)
        # Many waves, each its own agreement round.
        for wave in range(10):
            net.stacks[0].instance_at(("g",)).broadcast(b"w%d" % wave)
            net.run()
        collected = net.stacks[0].live_instances
        ab = net.stacks[0].instance_at(("g",))
        assert ab.round >= 8

        net_nogc = InstantNet(4)
        setup(net_nogc, gc_rounds=None)
        for wave in range(10):
            net_nogc.stacks[0].instance_at(("g",)).broadcast(b"w%d" % wave)
            net_nogc.run()
        uncollected = net_nogc.stacks[0].live_instances
        assert collected < uncollected / 2

    def test_received_payloads_dropped_after_delivery(self):
        net = InstantNet(4)
        setup(net, gc_rounds=2)
        for wave in range(5):
            net.stacks[0].instance_at(("g",)).broadcast(b"x" * 1000)
            net.run()
        ab = net.stacks[0].instance_at(("g",))
        assert len(ab._received) == 0
        assert ab.delivered_count == 5
        # The delivered-id record stays compact: one contiguous
        # watermark per sender, no sparse stragglers.
        assert ab.delivered_frontier() == [[0, 4, []]]

    def test_no_redelivery_after_gc(self):
        """Stale frames for a collected message must not re-deliver it."""
        from repro.core.reliable_broadcast import MSG_READY

        net = InstantNet(4)
        orders = setup(net, gc_rounds=2)
        net.stacks[0].instance_at(("g",)).broadcast(b"once")
        net.run()
        for _ in range(5):  # push rounds forward so (0, 0) is collected
            net.stacks[1].instance_at(("g",)).broadcast(b"fill")
            net.run()
        # Replay READY frames for the collected message at p2.
        for src in (0, 1, 3):
            net.stacks[src].send_frame(2, ("g", "msg", 0, 0), MSG_READY, b"once")
        net.run()
        delivered_ids = [msg_id for msg_id in orders[2]]
        assert delivered_ids.count((0, 0)) == 1

    def test_gc_window_preserves_recent_rounds(self):
        net = InstantNet(4)
        setup(net, gc_rounds=3)
        for wave in range(6):
            net.stacks[0].instance_at(("g",)).broadcast(b"w%d" % wave)
            net.run()
        ab = net.stacks[0].instance_at(("g",))
        current = ab.round
        # The last gc_rounds rounds still have their vect instances.
        for round_number in range(max(0, current - 3), current + 1):
            path = ("g", "vect", round_number, 0)
            assert net.stacks[0].instance_at(path) is not None, round_number
