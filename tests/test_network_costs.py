"""Unit tests of the timing-model arithmetic (docs/SIMULATOR.md)."""

import pytest

from repro.net.network import LAN_2006, LanSimulation, NetworkParameters, _Resource


class TestResource:
    def test_idle_resource_starts_at_earliest(self):
        resource = _Resource()
        assert resource.acquire(5.0, 1.0) == 6.0

    def test_busy_resource_queues(self):
        resource = _Resource()
        resource.acquire(0.0, 2.0)
        assert resource.acquire(1.0, 1.0) == 3.0

    def test_gap_leaves_idle_time(self):
        resource = _Resource()
        resource.acquire(0.0, 1.0)
        assert resource.acquire(10.0, 1.0) == 11.0


class TestCpuCost:
    def test_fixed_plus_per_byte(self):
        sim = LanSimulation(n=4, seed=0, ipsec=False)
        params = sim.params
        cost = sim._cpu_cost(1000, params.cpu_send_s)
        assert cost == pytest.approx(params.cpu_send_s + 1000 * params.cpu_per_byte_s)

    def test_ipsec_adds_fixed_and_per_byte(self):
        plain = LanSimulation(n=4, seed=0, ipsec=False)
        secured = LanSimulation(n=4, seed=0, ipsec=True)
        base = plain._cpu_cost(1000, LAN_2006.cpu_send_s)
        with_ah = secured._cpu_cost(1000, LAN_2006.cpu_send_s)
        expected_extra = (
            LAN_2006.ipsec_cpu_fixed_s + 1000 * LAN_2006.ipsec_cpu_per_byte_s
        )
        assert with_ah - base == pytest.approx(expected_extra)

    def test_bigger_frames_cost_more(self):
        sim = LanSimulation(n=4, seed=0)
        assert sim._cpu_cost(10_000, 0.0) > sim._cpu_cost(100, 0.0)


class TestEndToEndTiming:
    def one_hop_latency(self, payload_bytes, ipsec=True):
        sim = LanSimulation(n=4, seed=0, ipsec=ipsec)
        arrival = []
        sim.stacks[1].receive = lambda src, data: arrival.append(sim.now)
        sim.stacks[0].send_frame(1, ("t",), 0, bytes(payload_bytes))
        sim.run()
        return arrival[0]

    def test_single_hop_decomposition(self):
        """One small frame's latency equals the sum of the stage costs."""
        latency = self.one_hop_latency(10, ipsec=False)
        sim = LanSimulation(n=4, seed=0, ipsec=False)
        frame_len = None
        sim.stacks[0]._outbox = lambda dest, data: None
        from repro.core.wire import encode_frame

        frame_len = len(encode_frame(("t",), 0, bytes(10)))
        wire = sim.frame_wire_bytes(frame_len)
        params = sim.params
        serialization = wire * 8.0 / params.bandwidth_bps
        expected = (
            params.cpu_send_s
            + wire * params.cpu_per_byte_s
            + serialization  # NIC out
            + params.switch_latency_s
            + serialization  # NIC in
            + params.cpu_recv_s
            + wire * params.cpu_per_byte_s
        )
        assert latency == pytest.approx(expected, rel=1e-9)

    def test_large_frames_slower(self):
        assert self.one_hop_latency(10_000) > self.one_hop_latency(10)

    def test_ipsec_slower_than_plain(self):
        assert self.one_hop_latency(10, ipsec=True) > self.one_hop_latency(
            10, ipsec=False
        )

    def test_receiver_contention(self):
        """Two senders flooding one receiver beat the NIC-in serializer:
        the second frame arrives later than it would alone."""
        big = 50_000
        sim = LanSimulation(n=4, seed=0)
        arrivals = []
        sim.stacks[2].receive = lambda src, data: arrivals.append((src, sim.now))
        sim.stacks[0].send_frame(2, ("t",), 0, bytes(big))
        sim.stacks[1].send_frame(2, ("t",), 0, bytes(big))
        sim.run()
        assert len(arrivals) == 2
        solo = LanSimulation(n=4, seed=0)
        solo_arrival = []
        solo.stacks[2].receive = lambda src, data: solo_arrival.append(sim.now)
        solo.stacks[1].send_frame(2, ("t",), 0, bytes(big))
        solo.run()
        assert arrivals[1][1] > solo.now - 1e-12

    def test_wan_preset_slower(self):
        from repro.net.network import WAN_EMULATED

        lan = LanSimulation(n=4, seed=0)
        wan = LanSimulation(n=4, seed=0, params=WAN_EMULATED)
        lan_arrival, wan_arrival = [], []
        lan.stacks[1].receive = lambda src, data: lan_arrival.append(lan.now)
        wan.stacks[1].receive = lambda src, data: wan_arrival.append(wan.now)
        lan.stacks[0].send_frame(1, ("t",), 0, b"x")
        wan.stacks[0].send_frame(1, ("t",), 0, b"x")
        lan.run()
        wan.run()
        assert wan_arrival[0] > lan_arrival[0] * 10
