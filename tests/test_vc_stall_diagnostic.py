"""The vector consensus round-cap diagnostic (ProtocolStallError).

Theory says vector consensus decides within f+1 rounds; if an
environment ever breaks the assumption (see DESIGN.md's liveness
caveats), the implementation must surface a diagnostic instead of
hanging.  We force the condition with a test-only MVC that always
decides ⊥.
"""

import pytest

from repro.core.errors import ProtocolStallError
from repro.core.multivalued_consensus import MultiValuedConsensus
from repro.core.stack import ProtocolFactory

from util import InstantNet


class AlwaysBottomMvc(MultiValuedConsensus):
    """Test double: decides ⊥ the moment it is asked to propose."""

    def propose(self, value):
        self._decide(None)


def test_round_cap_raises_instead_of_hanging():
    factory = ProtocolFactory.default().override("mvc", AlwaysBottomMvc)
    net = InstantNet(4, factories={pid: factory for pid in range(4)})
    for stack in net.stacks:
        stack.create("vc", ("v",))
    with pytest.raises(ProtocolStallError, match="round cap"):
        for pid, stack in enumerate(net.stacks):
            stack.instance_at(("v",)).propose(b"p%d" % pid)
        net.run()


def test_normal_runs_never_hit_the_cap():
    net = InstantNet(4)
    for stack in net.stacks:
        stack.create("vc", ("v",))
    for pid, stack in enumerate(net.stacks):
        stack.instance_at(("v",)).propose(b"p%d" % pid)
    net.run()
    for stack in net.stacks:
        vc = stack.instance_at(("v",))
        assert vc.decided
        assert vc.round_number <= stack.config.f
