"""The stack: control-block chaining, demux, OOC handling, factories."""

import pytest

from repro.core.config import GroupConfig
from repro.core.errors import ConfigurationError, ProtocolViolationError
from repro.core.mbuf import Mbuf
from repro.core.stack import ControlBlock, ProtocolFactory, Stack
from repro.core.wire import encode_frame

from util import InstantNet


class Recorder(ControlBlock):
    """Minimal protocol: records inputs, supports child creation."""

    protocol = "rec"

    def __init__(self, stack, path, parent=None, purpose=None):
        super().__init__(stack, path, parent, purpose)
        self.inputs = []
        self.orphans = []
        self.child_events = []
        self.create_orphans = False

    def input(self, mbuf):
        self.inputs.append(mbuf)

    def accept_orphan(self, mbuf):
        self.orphans.append(mbuf)
        if self.create_orphans and len(mbuf.path) == len(self.path) + 1:
            self.make_child("rec", (mbuf.path[-1],))
            return True
        return False

    def child_event(self, child, event):
        self.child_events.append((child.path, event))


def recorder_factory():
    return ProtocolFactory({"rec": Recorder})


def make_stack(outbox=None):
    sent = []
    stack = Stack(
        GroupConfig(4),
        0,
        outbox=outbox or (lambda dest, data: sent.append((dest, data))),
        factory=recorder_factory(),
    )
    stack._sent = sent  # test-only handle
    return stack


class TestRouting:
    def test_frame_reaches_instance(self):
        stack = make_stack()
        instance = stack.create("rec", ("a",))
        stack.receive(1, encode_frame(("a",), 0, b"x"))
        assert len(instance.inputs) == 1
        assert instance.inputs[0].src == 1
        assert instance.inputs[0].payload == b"x"

    def test_unknown_path_goes_ooc_and_drains_on_create(self):
        stack = make_stack()
        stack.receive(1, encode_frame(("late",), 0, b"x"))
        assert stack.ooc_pending == 1
        instance = stack.create("rec", ("late",))
        assert stack.ooc_pending == 0
        assert len(instance.inputs) == 1

    def test_descendant_frames_drain_on_ancestor_create(self):
        class CreatingRecorder(Recorder):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                self.create_orphans = True

        stack = make_stack()
        stack.factory = ProtocolFactory({"rec": CreatingRecorder})
        stack.receive(1, encode_frame(("root", 7), 0, b"x"))
        root = stack.create("rec", ("root",))
        # Registration of ("root",) re-routes the parked frame once the
        # constructor finishes; accept_orphan then creates the child.
        child = stack.instance_at(("root", 7))
        assert child is not None
        assert len(child.inputs) == 1

    def test_accept_orphan_decline_parks_frame(self):
        stack = make_stack()
        root = stack.create("rec", ("root",))
        stack.receive(1, encode_frame(("root", 3), 0, b"x"))
        assert len(root.orphans) == 1
        assert stack.ooc_pending == 1

    def test_deepest_ancestor_wins(self):
        stack = make_stack()
        outer = stack.create("rec", ("a",))
        inner = outer.make_child("rec", ("b",))
        stack.receive(1, encode_frame(("a", "b", "c"), 0, None))
        assert len(inner.orphans) == 1
        assert outer.orphans == []

    def test_malformed_frame_dropped_and_counted(self):
        stack = make_stack()
        stack.receive(1, b"\xff\xfe garbage")
        assert stack.stats.dropped["malformed-frame"] == 1

    def test_protocol_violation_dropped_and_counted(self):
        stack = make_stack()

        class Violator(Recorder):
            def input(self, mbuf):
                raise ProtocolViolationError("nope")

        stack.factory = ProtocolFactory({"rec": Violator})
        stack.create("rec", ("v",))
        stack.receive(1, encode_frame(("v",), 0, None))
        assert stack.stats.dropped["protocol-violation"] == 1

    def test_receive_records_stats(self):
        stack = make_stack()
        frame = encode_frame(("x",), 0, b"abc")
        stack.receive(2, frame)
        assert stack.stats.frames_received == 1
        assert stack.stats.bytes_received == len(frame)


class TestSending:
    def test_send_frame_invokes_outbox(self):
        stack = make_stack()
        stack.send_frame(3, ("p",), 1, b"hi")
        assert len(stack._sent) == 1
        dest, data = stack._sent[0]
        assert dest == 3

    def test_send_all_reaches_everyone_including_self(self):
        stack = make_stack()
        instance = stack.create("rec", ("p",))
        instance.send_all(0, b"x")
        assert [dest for dest, _ in stack._sent] == [0, 1, 2, 3]

    def test_send_stats(self):
        stack = make_stack()
        stack.send_frame(1, ("p",), 0, b"hello")
        assert stack.stats.frames_sent == 1
        assert stack.stats.bytes_sent > 0


class TestInstanceTree:
    def test_duplicate_path_rejected(self):
        stack = make_stack()
        stack.create("rec", ("dup",))
        with pytest.raises(ConfigurationError):
            stack.create("rec", ("dup",))

    def test_destroy_removes_subtree(self):
        stack = make_stack()
        root = stack.create("rec", ("r",))
        child = root.make_child("rec", ("c",))
        grandchild = child.make_child("rec", ("g",))
        assert stack.live_instances == 3
        root.destroy()
        assert stack.live_instances == 0
        assert grandchild.destroyed

    def test_destroy_purges_subtree_ooc(self):
        stack = make_stack()
        root = stack.create("rec", ("r",))
        stack.receive(1, encode_frame(("r", "future"), 0, None))
        assert stack.ooc_pending == 1
        root.destroy()
        assert stack.ooc_pending == 0
        assert stack.stats.ooc_purged == 1

    def test_destroy_idempotent(self):
        stack = make_stack()
        root = stack.create("rec", ("r",))
        root.destroy()
        root.destroy()
        assert stack.live_instances == 0

    def test_child_of_destroyed_parent_rejected(self):
        from repro.core.errors import InstanceDestroyedError

        stack = make_stack()
        root = stack.create("rec", ("r",))
        root.destroy()
        with pytest.raises(InstanceDestroyedError):
            root.make_child("rec", ("c",))

    def test_purpose_inherited(self):
        stack = make_stack()
        root = stack.create("rec", ("r",), purpose="agreement")
        child = root.make_child("rec", ("c",))
        assert child.purpose == "agreement"

    def test_purpose_overridable_at_creation(self):
        stack = make_stack()
        root = stack.create("rec", ("r",), purpose="agreement")
        child = root.make_child("rec", ("c",), purpose="payload")
        assert child.purpose == "payload"

    def test_deliver_routes_to_parent(self):
        stack = make_stack()
        root = stack.create("rec", ("r",))
        child = root.make_child("rec", ("c",))
        child.deliver("event")
        assert root.child_events == [(("r", "c"), "event")]

    def test_deliver_routes_to_callback_at_root(self):
        stack = make_stack()
        root = stack.create("rec", ("r",))
        events = []
        root.on_deliver = lambda inst, e: events.append(e)
        root.deliver("up")
        assert events == ["up"]

    def test_deliver_after_destroy_is_dropped(self):
        stack = make_stack()
        root = stack.create("rec", ("r",))
        events = []
        root.on_deliver = lambda inst, e: events.append(e)
        root.destroy()
        root.deliver("late")
        assert events == []


class TestFactory:
    def test_default_factory_has_all_layers(self):
        factory = ProtocolFactory.default()
        assert factory.kinds() == ["ab", "bc", "ckpt", "eb", "mvc", "rb", "vc"]

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            ProtocolFactory({}).resolve("nope")

    def test_override_returns_new_factory(self):
        base = ProtocolFactory({"rec": Recorder})

        class Other(Recorder):
            pass

        derived = base.override("rec", Other)
        assert base.resolve("rec") is Recorder
        assert derived.resolve("rec") is Other

    def test_invalid_process_id(self):
        with pytest.raises(ConfigurationError):
            Stack(GroupConfig(4), 4, outbox=lambda d, b: None)


class TestEndToEndRouting:
    def test_instantnet_carries_frames(self):
        net = InstantNet(4)
        for stack in net.stacks:
            stack.create("rb", ("m",), sender=2)
        got = []
        for pid, stack in enumerate(net.stacks):
            stack.instance_at(("m",)).on_deliver = (
                lambda _i, v, pid=pid: got.append((pid, v))
            )
        net.stacks[2].instance_at(("m",)).broadcast(b"payload")
        net.run()
        assert sorted(got) == [(pid, b"payload") for pid in range(4)]
