"""ShardedNode: S stacks per process over shared authenticated links."""

import asyncio

import pytest

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.shard.node import ShardedNode, tag_unit
from repro.shard.sim import sharded_configs
from repro.transport.tcp import PeerAddress, RitasNode

NAMES = ["s0", "s1"]


def make_sharded_group(n=4, names=NAMES, seed=23):
    configs = sharded_configs(GroupConfig(n), names)
    blank = [PeerAddress("127.0.0.1", 0) for _ in range(n)]
    return [ShardedNode(configs, pid, blank, seed=seed) for pid in range(n)]


async def start_group(nodes):
    for node in nodes:
        await node.listen()
    addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()


async def close_all(nodes):
    for node in nodes:
        await node.close()


class TestShardedGroup:
    def test_both_shards_order_over_shared_links(self):
        """Two groups, one socket mesh: each shard's AB delivers its own
        stream on every node, in the same order everywhere."""

        async def scenario():
            nodes = make_sharded_group()
            try:
                await start_group(nodes)
                logs = {
                    (pid, s): []
                    for pid in range(4)
                    for s in range(2)
                }
                for node in nodes:
                    for index, stack in enumerate(node.shard_stacks):
                        ab = stack.create("ab", ("t",))
                        ab.on_deliver = (
                            lambda _i, d, log=logs[(node.process_id, index)]:
                            log.append((d.sender, bytes(d.payload)))
                        )
                k = 3
                for node in nodes:
                    for index, stack in enumerate(node.shard_stacks):
                        with stack.coalesce():
                            for j in range(k):
                                stack.instance_at(("t",)).broadcast(
                                    f"s{index}-p{node.process_id}-{j}".encode()
                                )

                async def done():
                    while any(len(log) < 4 * k for log in logs.values()):
                        await asyncio.sleep(0.01)

                await asyncio.wait_for(done(), timeout=60.0)
                for index in range(2):
                    # Total order: every node saw shard `index`'s stream
                    # identically...
                    reference = logs[(0, index)]
                    for pid in range(1, 4):
                        assert logs[(pid, index)][: len(reference)] == reference[
                            : len(logs[(pid, index)])
                        ]
                    # ...and it contains only that shard's payloads.
                    assert all(
                        payload.startswith(f"s{index}-".encode())
                        for _, payload in reference
                    )
            finally:
                await close_all(nodes)

        asyncio.run(scenario())

    def test_shard_metrics_share_one_registry(self):
        async def scenario():
            nodes = make_sharded_group()
            try:
                await start_group(nodes)
                registry = nodes[0].enable_metrics()
                for index, stack in enumerate(nodes[0].shard_stacks):
                    assert stack.metrics.enabled
                delivered = [0, 0]
                for node in nodes:
                    for index, stack in enumerate(node.shard_stacks):
                        ab = stack.create("ab", ("t",))
                        if node.process_id == 0:
                            ab.on_deliver = (
                                lambda _i, _d, idx=index: delivered.__setitem__(
                                    idx, delivered[idx] + 1
                                )
                            )
                for node in nodes:
                    for stack in node.shard_stacks:
                        stack.instance_at(("t",)).broadcast(b"m")

                async def done():
                    while min(delivered) < 4:
                        await asyncio.sleep(0.01)

                await asyncio.wait_for(done(), timeout=60.0)
                nodes[0].sample_metrics()
                shards_seen = {
                    metric.get("labels", {}).get("shard")
                    for metric in registry.snapshot()
                }
                assert {"s0", "s1"} <= shards_seen
            finally:
                await close_all(nodes)

        asyncio.run(scenario())


class TestDemux:
    def test_unknown_shard_index_is_rejected_and_charged(self):
        """A tagged unit for an unhosted shard is dropped, counted, and
        written to every hosted shard's misbehavior ledger."""
        configs = sharded_configs(GroupConfig(4), NAMES)
        blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
        node = ShardedNode(configs, 0, blank, seed=1)
        before = node.frames_rejected
        node._dispatch_unit(2, tag_unit(7, b"junk"))
        assert node.frames_unknown_shard == 1
        assert node.frames_rejected == before + 1

    def test_untagged_units_route_to_shard_zero(self):
        configs = sharded_configs(GroupConfig(4), NAMES)
        blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
        node = ShardedNode(configs, 0, blank, seed=1)
        seen = []
        node.stack.receive = lambda src, data: seen.append((src, data))
        node._dispatch_unit(1, b"\x01rest-of-frame")
        assert seen == [(1, b"\x01rest-of-frame")]

    def test_rejects_duplicate_tags_and_mixed_sizes(self):
        blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
        from repro.core.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="distinct"):
            ShardedNode(
                sharded_configs(GroupConfig(4), ["a"]) * 2, 0, blank, seed=1
            )


class TestInterop:
    def test_single_shard_node_is_wire_compatible_with_plain_nodes(self):
        """A one-shard ShardedNode with an empty group tag speaks the
        exact legacy wire format: it joins a group of plain RitasNodes
        and the mixed group orders together."""

        async def scenario():
            config = GroupConfig(4)
            dealer = TrustedDealer(4, seed=b"interop-tests")
            blank = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
            nodes = [
                RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=3)
                for pid in range(2)
            ] + [
                ShardedNode(
                    [config], pid, blank, [dealer.keystore_for(pid)], seed=3
                )
                for pid in range(2, 4)
            ]
            try:
                await start_group(nodes)
                delivered = [0] * 4
                for pid, node in enumerate(nodes):
                    ab = node.stack.create("ab", ("t",))
                    ab.on_deliver = lambda _i, _d, pid=pid: delivered.__setitem__(
                        pid, delivered[pid] + 1
                    )
                for node in nodes:
                    node.stack.instance_at(("t",)).broadcast(b"mixed")

                async def done():
                    while min(delivered) < 4:
                        await asyncio.sleep(0.01)

                await asyncio.wait_for(done(), timeout=60.0)
            finally:
                await close_all(nodes)

        asyncio.run(scenario())
