"""Statistics accounting, including the Figure 7 derived quantities."""

from collections import Counter
from dataclasses import fields

from repro.core.stats import (
    PURPOSE_AGREEMENT,
    PURPOSE_PAYLOAD,
    RecoveryStats,
    StackStats,
)


def _populate(stats, base=1):
    """Set every accumulable field of *stats* to a distinct nonzero value
    (ints get base+index, Counters get one entry)."""
    expected = {}
    for index, f in enumerate(fields(stats)):
        current = getattr(stats, f.name)
        if isinstance(current, Counter):
            current[f"{f.name}-key"] = base + index
            expected[f.name] = Counter({f"{f.name}-key": base + index})
        elif isinstance(current, bool):
            continue
        elif isinstance(current, int):
            setattr(stats, f.name, base + index)
            expected[f.name] = base + index
    return expected


class TestCounters:
    def test_send_receive(self):
        stats = StackStats()
        stats.record_send(100)
        stats.record_send(50)
        stats.record_receive(30)
        assert stats.frames_sent == 2
        assert stats.bytes_sent == 150
        assert stats.frames_received == 1
        assert stats.bytes_received == 30

    def test_drops_by_reason(self):
        stats = StackStats()
        stats.record_drop("malformed-frame")
        stats.record_drop("malformed-frame")
        stats.record_drop("protocol-violation")
        assert stats.dropped["malformed-frame"] == 2
        assert stats.dropped["protocol-violation"] == 1

    def test_decisions_and_rounds(self):
        stats = StackStats()
        stats.record_decision("bc", 1)
        stats.record_decision("bc", 1)
        stats.record_decision("bc", 3)
        assert stats.decisions["bc"] == 3
        assert stats.consensus_rounds[("bc", 1)] == 2
        assert stats.max_rounds("bc") == 3
        assert stats.max_rounds("mvc") == 0


class TestAgreementCost:
    def test_zero_when_no_broadcasts(self):
        assert StackStats().agreement_cost() == 0.0

    def test_fraction(self):
        stats = StackStats()
        for _ in range(3):
            stats.record_broadcast("rb", PURPOSE_PAYLOAD)
        stats.record_broadcast("rb", PURPOSE_AGREEMENT)
        stats.record_broadcast("eb", PURPOSE_AGREEMENT)
        assert stats.total_broadcasts() == 5
        assert stats.broadcasts_for(PURPOSE_AGREEMENT) == 2
        assert stats.agreement_cost() == 0.4

    def test_kind_and_purpose_are_independent_axes(self):
        stats = StackStats()
        stats.record_broadcast("rb", PURPOSE_PAYLOAD)
        stats.record_broadcast("eb", PURPOSE_PAYLOAD)
        assert stats.broadcasts_for(PURPOSE_PAYLOAD) == 2
        assert stats.broadcasts[("rb", PURPOSE_PAYLOAD)] == 1


class TestMerge:
    def test_merge_accumulates_everything(self):
        a = StackStats()
        b = StackStats()
        a.record_send(10)
        b.record_send(20)
        b.record_receive(5)
        a.record_broadcast("rb", PURPOSE_PAYLOAD)
        b.record_broadcast("rb", PURPOSE_AGREEMENT)
        a.record_decision("bc", 1)
        b.record_decision("bc", 2)
        b.ooc_stored = 3
        a.merge(b)
        assert a.frames_sent == 2
        assert a.bytes_sent == 30
        assert a.frames_received == 1
        assert a.total_broadcasts() == 2
        assert a.decisions["bc"] == 2
        assert a.max_rounds("bc") == 2
        assert a.ooc_stored == 3

    def test_merge_leaves_other_untouched(self):
        a, b = StackStats(), StackStats()
        b.record_send(10)
        a.merge(b)
        assert b.frames_sent == 1

    def test_merge_covers_every_stack_stats_field(self):
        # Drift-proofing: merge is driven by dataclasses.fields(), so a
        # counter added to StackStats is merged automatically.  Populate
        # EVERY int and Counter field with a distinct nonzero value and
        # check each one doubles -- a field silently skipped by merge
        # fails here by name.
        a, b = StackStats(), StackStats()
        expected = _populate(a)
        assert expected  # the dataclass has accumulable fields
        _populate(b)
        a.merge(b)
        for name, value in expected.items():
            merged = getattr(a, name)
            if isinstance(value, Counter):
                doubled = Counter({k: 2 * v for k, v in value.items()})
                assert merged == doubled, f"Counter field {name} not merged"
            else:
                assert merged == 2 * value, f"int field {name} not merged"

    def test_merge_covers_every_recovery_stats_field(self):
        a, b = RecoveryStats(), RecoveryStats()
        expected = _populate(a)
        assert expected
        _populate(b)
        b.rejoin_time_s = 9.5
        a.merge(b)
        for name, value in expected.items():
            assert getattr(a, name) == 2 * value, f"field {name} not merged"
        # Per-replica, not a sum: stays whatever this replica recorded.
        assert a.rejoin_time_s is None
        assert b.rejoin_time_s == 9.5
