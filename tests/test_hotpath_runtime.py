"""Runtime-side hot-path tests: the leaned event loop must be
observationally identical to the straightforward one, and the perf
runner must produce a well-formed trajectory entry.
"""

from __future__ import annotations

import json
from random import Random

from repro.net.simulator import EventLoop
from repro.perf.__main__ import main as perf_main


class TestLeanEventLoop:
    def _record_all(self, seed: int) -> list[int]:
        loop = EventLoop(tie_break_rng=Random(seed))
        order: list[int] = []
        for i in range(200):
            loop.schedule((i % 7) * 0.5, order.append, i)
        assert loop.run() == "idle"
        assert loop.events_processed == 200
        return order

    def _record_paused(self, seed: int, chunk: int) -> list[int]:
        loop = EventLoop(tie_break_rng=Random(seed))
        order: list[int] = []
        for i in range(200):
            loop.schedule((i % 7) * 0.5, order.append, i)
        while loop.pending():
            reason = loop.run(max_events=chunk)
            assert reason in ("max_events", "idle")
        return order

    def test_max_events_pauses_are_invisible(self):
        # The one-pop-with-push-back rewrite must not reorder or lose
        # events across pause points, for any pause granularity.
        baseline = self._record_all(5)
        for chunk in (1, 3, 7, 50):
            assert self._record_paused(5, chunk) == baseline

    def test_max_time_pushes_the_over_horizon_event_back(self):
        loop = EventLoop()
        order: list[int] = []
        loop.schedule(1.0, order.append, 1)
        loop.schedule(2.0, order.append, 2)
        loop.schedule(3.0, order.append, 3)
        assert loop.run(max_time=2.0) == "max_time"
        assert order == [1, 2]
        assert loop.pending() == 1  # the 3.0s event survived the peek
        assert loop.run() == "idle"
        assert order == [1, 2, 3]

    def test_events_processed_visible_to_hooks(self):
        loop = EventLoop()
        seen: list[int] = []
        loop.on_event = lambda: seen.append(loop.events_processed)
        for i in range(5):
            loop.schedule(0.1 * i, lambda: None)
        loop.run()
        assert seen == [1, 2, 3, 4, 5]  # bumped before the hook runs

    def test_until_checked_after_each_event(self):
        loop = EventLoop()
        order: list[int] = []
        for i in range(10):
            loop.schedule(0.1 * i, order.append, i)
        assert loop.run(until=lambda: len(order) >= 4) == "until"
        assert order == [0, 1, 2, 3]


class TestPerfRunnerSmoke:
    def test_quick_wire_run_writes_schema_entry(self, tmp_path):
        out = tmp_path / "bench.json"
        assert perf_main(["--quick", "--area", "wire", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema"] == "repro.perf/v1"
        assert report["quick"] is True
        wire = report["areas"]["wire"]
        assert wire["encode_ops_per_sec"] > 0
        assert wire["decode_ops_per_sec"] > 0

    def test_baseline_comparison_embeds_speedups(self, tmp_path):
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert perf_main(["--quick", "--area", "wire", "--out", str(first)]) == 0
        assert (
            perf_main(
                [
                    "--quick",
                    "--area",
                    "wire",
                    "--out",
                    str(second),
                    "--baseline",
                    str(first),
                ]
            )
            == 0
        )
        report = json.loads(second.read_text())
        assert report["baseline"]["areas"]["wire"]["encode_ops_per_sec"] > 0
        assert any(m.startswith("wire.") for m in report["speedup"])
