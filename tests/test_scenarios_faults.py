"""The fault-injection scenario catalog under the invariant checker.

Every hostile environment PR 8 added -- asymmetric WAN matrices, lossy/
duplicating/reordering links, the three gray failures, mid-agreement
partition healing, crash/rejoin churn -- must hold all protocol
invariants across an explorer sweep (five seeds each, cycling jitter),
not just one lucky schedule.  Alongside, unit coverage for the
order-log window alignment that makes "same total order" checkable
when replicas rejoin mid-history and logs are capped.
"""

import pytest

from repro.check.explore import explore
from repro.check.invariants import align_order_logs
from repro.check.scenarios import SCENARIOS

FAULT_SCENARIOS = (
    "wan-asym",
    "wan-lossy",
    "wan-dup",
    "wan-reorder",
    "gray-slow-replica",
    "gray-flaky-mac",
    "gray-degrading",
    "heal-mid-agreement",
    "churn-rejoin",
)


def test_catalog_registers_all_fault_scenarios():
    missing = set(FAULT_SCENARIOS) - set(SCENARIOS)
    assert not missing, f"unregistered scenarios: {sorted(missing)}"


@pytest.mark.parametrize("name", FAULT_SCENARIOS)
def test_scenario_holds_invariants_across_seeds(name):
    # explore() returns None when every run is clean, or the shrunken
    # reproducer of the first violation -- which makes a failure here
    # immediately replayable via `python -m repro.check replay`.
    reproducer = explore(name, 5)
    assert reproducer is None, (
        f"{name} violated {reproducer['violation']['invariant']} "
        f"(seed {reproducer['seed']})"
    )


M1, M2, M3, M4 = ((0, 1, b"a"), (0, 2, b"b"), (1, 7, b"c"), (2, 4, b"d"))


class TestAlignOrderLogs:
    def test_equal_windows(self):
        log = [M1, M2, M3]
        assert align_order_logs(log, log) == (0, 0, 3, True)

    def test_rejoined_replica_window_starts_mid_history(self):
        full = [M1, M2, M3, M4]
        suffix = [M3, M4]
        assert align_order_logs(full, suffix) == (2, 0, 2, True)
        assert align_order_logs(suffix, full) == (0, 2, 2, True)

    def test_capped_windows_overlap_in_the_middle(self):
        assert align_order_logs([M1, M2, M3], [M2, M3, M4]) == (1, 0, 2, True)

    def test_disjoint_windows_are_incomparable(self):
        assert align_order_logs([M1, M2], [M3, M4]) is None

    def test_empty_window_is_incomparable(self):
        assert align_order_logs([], [M1]) is None
        assert align_order_logs([M1], []) is None

    def test_swap_is_flagged_not_anchored_past(self):
        # A one-direction scan would anchor [m1, m2] vs [m2, m1] at m1
        # and "agree" on an overlap of one; the bidirectional anchor
        # disagrees, which is the order violation itself.
        index_a, index_b, overlap, agree = align_order_logs([M1, M2], [M2, M1])
        assert not agree
        assert (index_a, index_b) == (0, 1)
        assert overlap == 1

    def test_payload_mismatch_is_not_hidden_by_alignment(self):
        # Alignment anchors on message ids only; the checker compares
        # entries across the overlap, so a same-id payload fork must
        # still land inside the compared window.
        forged = (0, 1, b"FORGED")
        index_a, index_b, overlap, agree = align_order_logs([M1, M2], [forged, M2])
        assert agree
        assert [M1, M2][index_a:index_a + overlap] != [forged, M2][index_b:index_b + overlap]
