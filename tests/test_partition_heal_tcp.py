"""Partition healing mid-agreement on the real asyncio TCP runtime.

The simulator's 2/2-split heal test has an exact counterpart here:
:meth:`RitasNode.set_link_blocked` holds each cross-island link (frames
queue, nothing is lost -- TCP semantics), so a burst submitted before
the split can only finish ordering after the heal, and must land in one
identical total order on every replica.
"""

import asyncio

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.transport.tcp import PeerAddress, RitasNode

N = 4
ISLANDS = ((0, 1), (2, 3))
PER_NODE = 5
TOTAL = N * PER_NODE


async def _wait(predicate, timeout_s, what):
    for _ in range(int(timeout_s / 0.02)):
        if predicate():
            return
        await asyncio.sleep(0.02)
    raise TimeoutError(f"timed out waiting for {what}")


def _set_split(nodes, blocked):
    for src in ISLANDS[0]:
        for dest in ISLANDS[1]:
            nodes[src].set_link_blocked(dest, blocked)
            nodes[dest].set_link_blocked(src, blocked)


def test_tcp_heal_mid_agreement_delivers_identically():
    config = GroupConfig(N)
    dealer = TrustedDealer(N, seed=b"tcp-heal")

    async def scenario():
        blank = [PeerAddress("127.0.0.1", 0)] * N
        nodes = [
            RitasNode(
                config, pid, blank, dealer.keystore_for(pid), connect_retry_s=0.05
            )
            for pid in range(N)
        ]
        for node in nodes:
            await node.listen()
        addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
        for node in nodes:
            node.set_peer_addresses(addresses)
        for node in nodes:
            await node.connect()
        for node in nodes:
            node.stack.record_delivery_order = True
            node.stack.create("ab", ("a",))

        def logs():
            return [list(node.stack.instance_at(("a",)).order_log) for node in nodes]

        try:
            # The whole burst goes in *before* the split...
            for pid, node in enumerate(nodes):
                for index in range(PER_NODE):
                    node.stack.instance_at(("a",)).broadcast(b"%d:%d" % (pid, index))
            await asyncio.sleep(0.001)
            # ...and the split lands mid-agreement: neither island holds
            # a quorum (n-f = 3 > 2), so the tail of the order can only
            # form after the heal.
            _set_split(nodes, True)
            assert any(len(log) < TOTAL for log in logs())
            await asyncio.sleep(0.3)
            # Still incomplete: 0.3 s is eternities on a loopback LAN,
            # so only the missing quorum explains the stall.
            assert any(len(log) < TOTAL for log in logs())

            _set_split(nodes, False)
            await _wait(
                lambda: all(len(log) == TOTAL for log in logs()),
                30,
                "post-heal delivery of the full burst",
            )
            final = logs()
            assert final[0] == final[1] == final[2] == final[3]
        finally:
            for node in nodes:
                await node.close()

    asyncio.run(scenario())
