"""The client gateway: protocol, end-to-end sessions, admission, loadgen."""

import asyncio
import json
import struct

import pytest

import repro.core.wire as wire
from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.gateway.http import render
from repro.gateway.loadgen import LoadProfile, build_schedule, run_load
from repro.gateway.protocol import (
    STATUS_ERROR,
    STATUS_OK,
    STATUS_RETRY,
    UNCORRELATED_ID,
    ClientProtocolError,
    FrameReader,
    decode_request,
    decode_response,
    encode_client_frame,
    encode_request,
    encode_response,
    read_frame,
)
from repro.gateway.server import SERVICE_PATH_KV, ClientGateway, GatewayServices
from repro.transport.tcp import PeerAddress, RitasNode


# -- protocol unit tests (no I/O) ---------------------------------------------


class TestProtocol:
    def test_request_roundtrip(self):
        frame = encode_request(7, "put", ["k", b"v"])
        reader = FrameReader()
        bodies = reader.feed(frame)
        assert len(bodies) == 1
        assert decode_request(bodies[0]) == (7, "put", ["k", b"v"])

    def test_response_roundtrip(self):
        frame = encode_response(3, STATUS_OK, [0, 5, True])
        (body,) = FrameReader().feed(frame)
        assert decode_response(body) == (3, STATUS_OK, [0, 5, True])

    def test_feed_reassembles_split_and_pipelined_frames(self):
        stream = b"".join(encode_request(i, "get", [f"k{i}"]) for i in range(5))
        reader = FrameReader()
        collected = []
        # Feed in 3-byte slivers: every split point must reassemble.
        for offset in range(0, len(stream), 3):
            collected.extend(reader.feed(stream[offset : offset + 3]))
        assert [decode_request(b)[0] for b in collected] == [0, 1, 2, 3, 4]

    def test_unknown_op_and_bad_arity_rejected(self):
        with pytest.raises(ClientProtocolError, match="unknown op"):
            decode_request(wire.encode_value([1, "explode", []]))
        with pytest.raises(ClientProtocolError, match="args"):
            decode_request(wire.encode_value([1, "put", ["only-key"]]))

    def test_bad_shape_rejected(self):
        with pytest.raises(ClientProtocolError, match="request must be"):
            decode_request(wire.encode_value("not-a-request"))
        with pytest.raises(ClientProtocolError, match="undecodable"):
            decode_request(b"\xff\xff\xff")

    def test_request_id_recovered_when_possible(self):
        """Decode errors carry the originating request id whenever the
        leading int parses, so the server's error response correlates."""
        cases = {
            wire.encode_value([7, "explode", []]): 7,  # unknown op
            wire.encode_value([8, "put", ["only-key"]]): 8,  # bad arity
            wire.encode_value([9, 42, []]): 9,  # bad shape, int leader
            wire.encode_value("not-a-request"): None,  # no leader at all
            b"\xff\xff\xff": None,  # undecodable
        }
        for body, expected in cases.items():
            with pytest.raises(ClientProtocolError) as excinfo:
                decode_request(body)
            assert excinfo.value.request_id == expected

    def test_oversized_frame_rejected(self):
        reader = FrameReader()
        with pytest.raises(ClientProtocolError, match="implausible"):
            reader.feed(struct.pack(">I", 1 << 30))


# -- live-group scaffolding ----------------------------------------------------


async def start_gateway_group(
    n=4, *, config=None, local_reads=False, **gateway_kwargs
):
    """An n-replica TCP group with the services on every replica and one
    gateway riding on replica 0 (the same staged ephemeral-port startup
    as tests/test_transport.py)."""
    config = config if config is not None else GroupConfig(n)
    dealer = TrustedDealer(config.n, seed=b"gateway-tests")
    blank = [PeerAddress("127.0.0.1", 0) for _ in range(config.n)]
    nodes = [
        RitasNode(config, pid, blank, dealer.keystore_for(pid), seed=11)
        for pid in range(config.n)
    ]
    for node in nodes:
        await node.listen()
    addresses = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
    for node in nodes:
        node.set_peer_addresses(addresses)
    for node in nodes:
        await node.connect()
    services = [GatewayServices.attach(node) for node in nodes]
    nodes[0].enable_metrics()
    gateway = ClientGateway(
        nodes[0], services[0], local_reads=local_reads, **gateway_kwargs
    )
    port = await gateway.listen()
    return nodes, services, gateway, port


async def close_all(gateway, nodes):
    await gateway.close()
    for node in nodes:
        await node.close()


class Client:
    """A minimal blocking-per-request test client (one op in flight)."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer
        self._next_id = 0

    @classmethod
    async def connect(cls, port):
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        return cls(reader, writer)

    async def request(self, op, args, timeout=30.0):
        request_id = self._next_id
        self._next_id += 1
        self.writer.write(encode_request(request_id, op, args))
        await self.writer.drain()
        body = await asyncio.wait_for(read_frame(self.reader), timeout)
        got_id, status, detail = decode_response(body)
        assert got_id == request_id
        return status, detail

    async def close(self):
        self.writer.close()
        try:
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def converged(nodes, timeout=30.0):
    """Wait until every replica's KV log has the same delivered count."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + timeout
    while True:
        counts = [
            node.stack.instance_at(SERVICE_PATH_KV).delivered_count for node in nodes
        ]
        if len(set(counts)) == 1:
            return
        if loop.time() > deadline:
            raise AssertionError(f"replicas did not converge: {counts}")
        await asyncio.sleep(0.05)


# -- end-to-end ----------------------------------------------------------------


class TestGatewayE2E:
    def test_sessions_mixed_ops_consistent(self):
        """Concurrent sessions of mixed ops: every session observes its
        own writes through ordered reads, and all replicas converge."""

        async def scenario():
            nodes, services, gateway, port = await start_gateway_group()
            n_sessions = 12
            try:
                async def session(index):
                    client = await Client.connect(port)
                    try:
                        key = f"user{index}"
                        status, detail = await client.request(
                            "put", [key, b"v1-%d" % index]
                        )
                        assert status == STATUS_OK
                        sender, rbid, result = detail
                        assert sender == 0 and isinstance(rbid, int)
                        assert result is True
                        # An ordered read after the acked write sees it.
                        status, detail = await client.request("get", [key])
                        assert status == STATUS_OK
                        assert detail[2] == b"v1-%d" % index
                        # CAS from the read value wins; a stale CAS loses.
                        status, detail = await client.request(
                            "cas", [key, b"v1-%d" % index, b"v2"]
                        )
                        assert status == STATUS_OK and detail[2] is True
                        status, detail = await client.request(
                            "cas", [key, b"bogus", b"v3"]
                        )
                        assert status == STATUS_OK and detail[2] is False
                        status, detail = await client.request("ping", [])
                        assert status == STATUS_OK and detail[2] == "pong"
                    finally:
                        await client.close()

                await asyncio.wait_for(
                    asyncio.gather(*(session(i) for i in range(n_sessions))),
                    timeout=120,
                )
                await converged(nodes)
                digests = {s.kv.state_digest() for s in services}
                assert len(digests) == 1
                for index in range(n_sessions):
                    assert services[3].kv.get(f"user{index}") == b"v2"
                assert gateway.ops_ok == n_sessions * 5
                assert gateway.sessions_total == n_sessions
                assert gateway.sessions_open == 0
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_pipelined_requests_one_connection(self):
        """Many requests written before any response is read; acked ids
        are unique (no duplicated acknowledgements)."""

        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                k = 16
                for i in range(k):
                    writer.write(encode_request(i, "put", [f"p{i}", b"x%d" % i]))
                await writer.drain()
                got = {}
                for _ in range(k):
                    body = await asyncio.wait_for(read_frame(reader), 60.0)
                    request_id, status, detail = decode_response(body)
                    assert status == STATUS_OK
                    got[request_id] = detail
                assert sorted(got) == list(range(k))
                acked = [(d[0], d[1]) for d in got.values()]
                assert len(set(acked)) == k
                writer.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_backpressure_maps_to_retry_after(self):
        """A tiny ab_pending_cap turns a pipelined flood into retry-after
        responses carrying the admission context."""

        async def scenario():
            config = GroupConfig(4, ab_pending_cap=2)
            nodes, _services, gateway, port = await start_gateway_group(config=config)
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                k = 24
                for i in range(k):
                    writer.write(encode_request(i, "put", [f"flood{i}", b"v"]))
                await writer.drain()
                statuses = []
                retry_details = []
                for _ in range(k):
                    body = await asyncio.wait_for(read_frame(reader), 60.0)
                    _, status, detail = decode_response(body)
                    statuses.append(status)
                    if status == STATUS_RETRY:
                        retry_details.append(detail)
                assert statuses.count(STATUS_OK) >= 1
                assert retry_details, "cap=2 must refuse part of a 24-deep flood"
                for pending, cap, retry_ms in retry_details:
                    assert cap == 2
                    assert pending >= cap
                    assert retry_ms > 0
                assert gateway.ops_retry_after == len(retry_details)
                writer.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_local_reads_skip_ordering(self):
        async def scenario():
            nodes, services, gateway, port = await start_gateway_group(
                local_reads=True
            )
            try:
                client = await Client.connect(port)
                status, _ = await client.request("put", ["lr", b"value"])
                assert status == STATUS_OK
                # The write was acked, so this replica applied it: the
                # local read observes it without an ordering round.
                ordered_before = services[0].kv.rsm.ab.delivered_count
                status, detail = await client.request("get", ["lr"])
                assert status == STATUS_OK
                assert detail == [None, None, b"value"]
                assert services[0].kv.rsm.ab.delivered_count == ordered_before
                await client.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_lock_ops_scoped_per_session(self):
        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group()
            try:
                alice = await Client.connect(port)
                bob = await Client.connect(port)
                status, detail = await alice.request("acquire", ["mutex", "t"])
                assert status == STATUS_OK
                assert detail[2][0] == "granted"
                status, detail = await bob.request("acquire", ["mutex", "t"])
                assert status == STATUS_OK
                # Same tag, different session: the scoped identities
                # never alias, so bob queues behind alice.
                assert detail[2][0] == "queued"
                status, detail = await alice.request("release", ["mutex", "t"])
                assert status == STATUS_OK
                transition, new_holder = detail[2]
                assert transition == "released"
                assert new_holder is not None  # handed to bob's identity
                await alice.close()
                await bob.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_pipelined_kv_and_lock_ops_do_not_collide(self):
        """kv and locks are independent AB instances whose rbid counters
        both start at 0: the *first* put and the *first* acquire, when
        pipelined into one wakeup, carry equal (sender, rbid) msg_ids.
        The pending table must keep them apart (keyed by service too) so
        each request settles with its own result."""

        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                # One write -> one read wakeup -> both submissions share
                # the coalescing window; each RSM assigns rbid 0.
                writer.write(
                    encode_request(0, "put", ["collide", b"kv-wins"])
                    + encode_request(1, "acquire", ["collide-lock", "t"])
                )
                await writer.drain()
                got = {}
                for _ in range(2):
                    body = await asyncio.wait_for(read_frame(reader), 60.0)
                    request_id, status, detail = decode_response(body)
                    assert status == STATUS_OK
                    got[request_id] = detail
                assert sorted(got) == [0, 1]
                # Each response carries *its own* operation's result --
                # not the other's -- despite the equal rbids.
                assert got[0][2] is True  # put applied
                assert got[1][2][0] == "granted"  # lock transition
                assert gateway.ops_timeout == 0
                assert gateway.inflight_ops == 0
                writer.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_malformed_requests_answered_not_fatal(self):
        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group()
            try:
                reader, writer = await asyncio.open_connection("127.0.0.1", port)
                writer.write(encode_client_frame([1, "no-such-op", []]))
                writer.write(encode_client_frame([2, "put", ["k", "not-bytes"]]))
                writer.write(encode_client_frame("not-a-request"))
                await writer.drain()
                answered = []
                for _ in range(3):
                    body = await asyncio.wait_for(read_frame(reader), 10.0)
                    request_id, status, _ = decode_response(body)
                    assert status == STATUS_ERROR
                    answered.append(request_id)
                # Recoverable ids are echoed; the shapeless frame gets
                # the reserved UNCORRELATED_ID -- never a real client id
                # like 0, which a pipelining client could mis-settle.
                assert answered == [1, 2, UNCORRELATED_ID]
                # The session survived the garbage; valid ops still work.
                writer.write(encode_request(4, "ping", []))
                await writer.drain()
                body = await asyncio.wait_for(read_frame(reader), 10.0)
                request_id, status, _ = decode_response(body)
                assert (request_id, status) == (4, STATUS_OK)
                writer.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_session_admission_cap(self):
        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group(
                max_sessions=2
            )
            try:
                first = await Client.connect(port)
                second = await Client.connect(port)
                assert (await first.request("ping", []))[0] == STATUS_OK
                assert (await second.request("ping", []))[0] == STATUS_OK
                third = await Client.connect(port)
                # Refused at accept: the connection closes, no response.
                third.writer.write(encode_request(0, "ping", []))
                with pytest.raises((asyncio.IncompleteReadError, ConnectionError)):
                    await asyncio.wait_for(read_frame(third.reader), 10.0)
                assert gateway.sessions_open == 2
                await first.close()
                await second.close()
                await third.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())


class TestStatusEndpoint:
    def test_http_status_and_metrics(self):
        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group()
            try:
                http_port = await gateway.listen_http()
                client = await Client.connect(port)
                status, _ = await client.request("put", ["h", b"1"])
                assert status == STATUS_OK

                async def http_get(target):
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", http_port
                    )
                    writer.write(f"GET {target} HTTP/1.0\r\n\r\n".encode())
                    await writer.drain()
                    raw = await reader.read(-1)
                    writer.close()
                    head, _, body = raw.partition(b"\r\n\r\n")
                    return head.split(b"\r\n")[0].decode(), body

                status_line, body = await http_get("/status")
                assert "200" in status_line
                snapshot = json.loads(body)
                assert snapshot["process"] == 0
                assert snapshot["group_size"] == 4
                assert snapshot["sessions_open"] == 1
                assert snapshot["ops_ok"] >= 1
                # Admission is reported per service: retry-afters can
                # come from either RSM, so both must be visible.
                assert set(snapshot["admission"]) == {"kv", "locks"}
                for state in snapshot["admission"].values():
                    assert state["pending"] >= 0
                    assert state["cap"] == 0  # unbounded in this group
                status_line, body = await http_get("/metrics")
                assert "200" in status_line
                text = body.decode()
                assert "# TYPE gateway_sessions_open gauge" in text
                assert "gateway_ops_total" in text
                status_line, body = await http_get("/healthz")
                assert "200" in status_line and body == b"ok\n"
                status_line, _ = await http_get("/nope")
                assert "404" in status_line
                await client.close()
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())

    def test_render_rejects_non_get(self):
        class _FakeGateway:
            pass

        assert b"405" in render(_FakeGateway(), "/metrics", method="POST")


class TestShutdown:
    def test_clean_shutdown_no_lingering_tasks(self):
        """Closing the gateway and nodes leaves no pending asyncio task:
        the 'task was destroyed but it is pending' regression guard."""

        async def scenario():
            nodes, _services, gateway, port = await start_gateway_group()
            client = await Client.connect(port)
            status, _ = await client.request("put", ["s", b"1"])
            assert status == STATUS_OK
            # Close underneath the still-open client session.
            await close_all(gateway, nodes)
            await client.close()
            await asyncio.sleep(0)
            current = asyncio.current_task()
            lingering = [
                t for t in asyncio.all_tasks() if t is not current and not t.done()
            ]
            assert lingering == []

        asyncio.run(scenario())

    def test_gateway_close_is_idempotent(self):
        async def scenario():
            nodes, _services, gateway, _port = await start_gateway_group()
            await gateway.close()
            await gateway.close()
            for node in nodes:
                await node.close()

        asyncio.run(scenario())


# -- load generator ------------------------------------------------------------


class TestLoadgen:
    def test_schedule_deterministic(self):
        """Same seed -> the identical schedule, bit for bit."""
        profile = LoadProfile(sessions=8, rate=1000.0, ops=300, seed=42)
        first = build_schedule(profile)
        second = build_schedule(profile)
        assert first == second
        assert len(first) == 300
        # Arrival instants are strictly increasing (a Poisson process).
        assert all(b.at > a.at for a, b in zip(first, first[1:]))
        assert {op.session for op in first} <= set(range(8))

    def test_schedule_seed_sensitivity(self):
        base = LoadProfile(sessions=8, rate=1000.0, ops=300, seed=42)
        other = build_schedule(LoadProfile(sessions=8, rate=1000.0, ops=300, seed=43))
        assert build_schedule(base) != other

    def test_zipf_skews_toward_low_ranks(self):
        skewed = build_schedule(
            LoadProfile(ops=2000, key_space=100, zipf_s=1.2, seed=7)
        )
        counts = {}
        for op in skewed:
            counts[op.key] = counts.get(op.key, 0) + 1
        hot = sum(counts.get(f"k{r:02d}", 0) for r in range(10))
        # Under Zipf(1.2) the top 10% of ranks draws far more than 10%.
        assert hot / len(skewed) > 0.3

    def test_read_write_mix(self):
        reads_only = build_schedule(LoadProfile(ops=200, read_fraction=1.0, seed=3))
        writes_only = build_schedule(LoadProfile(ops=200, read_fraction=0.0, seed=3))
        assert all(op.op == "get" for op in reads_only)
        assert all(op.op == "put" and op.value is not None for op in writes_only)
        assert all(len(op.value) == 32 for op in writes_only)

    def test_run_load_audits_acked_writes(self):
        """A small open-loop run: every acknowledged op's AB id appears
        exactly once in the replicated log (zero lost, zero duplicated
        acknowledged writes)."""

        async def scenario():
            nodes, services, gateway, port = await start_gateway_group()
            try:
                profile = LoadProfile(
                    sessions=10, rate=200.0, ops=60, read_fraction=0.4, seed=5
                )
                report = await asyncio.wait_for(
                    run_load("127.0.0.1", port, profile, drain_timeout_s=60.0),
                    timeout=120,
                )
                assert report.sent == 60
                assert report.timeouts == 0
                assert report.errors == 0
                assert report.ok + report.retry_after == 60
                assert report.latency_p50_s > 0
                assert (
                    report.latency_p99_s
                    >= report.latency_p95_s
                    >= report.latency_p50_s
                )
                # The audit: acked ids vs the replica's applied log.
                applied_ids = [
                    delivery.msg_id for delivery, _ in services[0].kv.rsm.applied
                ]
                assert len(set(applied_ids)) == len(applied_ids)
                for acked in report.acked_ids:
                    assert applied_ids.count(tuple(acked)) == 1
                assert len(set(report.acked_ids)) == len(report.acked_ids)
            finally:
                await close_all(gateway, nodes)

        asyncio.run(scenario())
