"""Adversarial frame fuzzing: a corrupt process sends arbitrary frames at
every layer; correct processes must neither crash nor lose correctness.

The attacker (p3) bypasses its own protocol instances entirely and
injects raw frames -- random paths, random mtypes, random payloads,
including structurally valid ones aimed at real instance paths.
"""

import os
import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.wire import encode_frame

from util import InstantNet, decisions_of

ATTACKER = 3

# Payload values a smart fuzzer would try: protocol-domain values,
# near-miss shapes, and junk.
payload_strategy = st.recursive(
    st.none()
    | st.booleans()
    | st.integers(-(2**40), 2**40)
    | st.binary(max_size=40)
    | st.sampled_from([0, 1, [0, 0], [[0, 0]], [b"v", None], "INIT"]),
    lambda children: st.lists(children, max_size=4),
    max_leaves=8,
)

path_component = st.integers(-3, 6) | st.sampled_from(
    ["rb", "eb", "bc", "mvc", "vc", "ab", "msg", "vect", "init", "ord", 0, 1, 2, 3]
)


def inject(net, frames):
    """Send raw attacker frames to every correct process."""
    for path, mtype, payload in frames:
        for dest in range(3):
            try:
                net.stacks[ATTACKER].send_frame(dest, path, mtype, payload)
            except (TypeError, ValueError):
                pass  # unencodable fuzz value; irrelevant to receivers


# CI's flood-stress job raises the example budget via the environment;
# local runs keep the fast default.
COMMON = dict(
    max_examples=int(os.environ.get("RITAS_FUZZ_EXAMPLES", "30")),
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)

frames_strategy = st.lists(
    st.tuples(
        st.lists(path_component, max_size=6).map(tuple),
        st.integers(0, 5),
        payload_strategy,
    ),
    max_size=12,
)


@given(frames=frames_strategy, seed=st.integers(0, 1000))
@settings(**COMMON)
def test_binary_consensus_survives_fuzz(frames, seed):
    net = InstantNet(4)
    for pid in range(3):
        net.stacks[pid].create("bc", ("bc",))
    inject(net, frames)
    for pid in range(3):
        net.stacks[pid].instance_at(("bc",)).propose(1)
    inject(net, [(("bc",) + p, m, v) for p, m, v in frames])
    net.run()
    assert decisions_of(net, ("bc",))[:3] == [1, 1, 1]


@given(frames=frames_strategy, seed=st.integers(0, 1000))
@settings(**COMMON)
def test_mvc_survives_fuzz(frames, seed):
    net = InstantNet(4)
    for pid in range(3):
        net.stacks[pid].create("mvc", ("m",))
    inject(net, [(("m",) + p, m, v) for p, m, v in frames])
    for pid in range(3):
        net.stacks[pid].instance_at(("m",)).propose(b"survivor")
    net.run()
    decisions = [net.stacks[pid].instance_at(("m",)).decision for pid in range(3)]
    assert decisions == [b"survivor"] * 3


@given(frames=frames_strategy)
@settings(**COMMON)
def test_atomic_broadcast_survives_fuzz(frames):
    net = InstantNet(4)
    orders = {}
    for pid in range(3):
        ab = net.stacks[pid].create("ab", ("a",))
        orders[pid] = []
        ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append(d.msg_id)
    inject(net, [(("a",) + p, m, v) for p, m, v in frames])
    for pid in range(3):
        net.stacks[pid].instance_at(("a",)).broadcast(b"real-%d" % pid)
    inject(net, [(("a",) + p, m, v) for p, m, v in frames])
    net.run()
    reference = orders[0]
    # The attacker may inject *deliverable* junk of its own, but the real
    # messages arrive exactly once and order agreement holds.
    assert all(o == reference for o in orders.values())
    for pid in range(3):
        assert reference.count((pid, 0)) == 1


@given(frames=frames_strategy)
@settings(**COMMON)
def test_reliable_broadcast_survives_fuzz(frames):
    net = InstantNet(4)
    got = {}
    for pid in range(3):
        rb = net.stacks[pid].create("rb", ("r",), sender=0)
        rb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
    inject(net, [(("r",), m, v) for _, m, v in frames])
    net.stacks[0].instance_at(("r",)).broadcast(b"genuine")
    net.run()
    assert got == {pid: b"genuine" for pid in range(3)}


@given(frames=frames_strategy)
@settings(**COMMON)
def test_echo_broadcast_survives_fuzz(frames):
    net = InstantNet(4)
    got = {}
    for pid in range(3):
        eb = net.stacks[pid].create("eb", ("e",), sender=0)
        eb.on_deliver = lambda _i, v, pid=pid: got.setdefault(pid, v)
    inject(net, [(("e",), m, v) for _, m, v in frames])
    net.stacks[0].instance_at(("e",)).broadcast(b"genuine")
    net.run()
    # The attacker can interfere with its *own* VECT contribution only;
    # three honest rows always exist, so everyone still delivers.
    assert got == {pid: b"genuine" for pid in range(3)}


@given(data=st.binary(max_size=120))
@settings(max_examples=150, deadline=None)
def test_raw_garbage_at_the_stack(data):
    net = InstantNet(4)
    net.stacks[0].create("bc", ("bc",))
    net.stacks[0].receive(ATTACKER, data)  # must never raise


def test_sustained_ooc_flood_is_bounded():
    """A flood of frames for instances that will never exist stays within
    the OOC capacity and does not disturb live protocols."""
    net = InstantNet(4)
    for pid in range(3):
        net.stacks[pid].create("bc", ("bc",))
    rng = random.Random(5)
    for i in range(3000):
        net.stacks[ATTACKER].send_frame(
            rng.randrange(3), ("ghost", i), 0, b"x" * 16
        )
    for pid in range(3):
        net.stacks[pid].instance_at(("bc",)).propose(0)
    net.run()
    assert decisions_of(net, ("bc",))[:3] == [0, 0, 0]
    for pid in range(3):
        assert net.stacks[pid].ooc_pending <= net.stacks[pid]._ooc._capacity
