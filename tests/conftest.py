"""Shared fixtures for the RITAS test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Make tests/util.py importable as `util` regardless of invocation dir.
sys.path.insert(0, str(Path(__file__).parent))

from repro.core.config import GroupConfig  # noqa: E402
from repro.crypto.keys import TrustedDealer  # noqa: E402


@pytest.fixture
def config4() -> GroupConfig:
    """The paper's group: n=4, f=1."""
    return GroupConfig(4)


@pytest.fixture
def dealer4() -> TrustedDealer:
    return TrustedDealer(4, seed=b"tests")


@pytest.fixture
def keystores4(dealer4: TrustedDealer):
    return [dealer4.keystore_for(pid) for pid in range(4)]
