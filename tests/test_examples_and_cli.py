"""Smoke tests: every example script runs, and the ritas-bench CLI works."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.eval.cli import main as cli_main

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 180) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "identical order at all processes: True" in out

    def test_byzantine_faultloads(self):
        out = run_example("byzantine_faultloads.py")
        assert "every binary consensus decided in one round: True" in out
        assert "no multi-valued consensus ever decided ⊥: True" in out

    def test_agreement_dilution(self):
        out = run_example("agreement_dilution.py")
        assert "92" in out  # the k=4 anchor

    def test_replicated_kv(self):
        out = run_example("replicated_kv.py")
        assert "correct replicas agree on state: True" in out

    def test_distributed_lock(self):
        out = run_example("distributed_lock.py")
        assert "replicas agree on final state: True" in out
        assert "FIFO order: True" in out

    def test_protocol_trace(self):
        out = run_example("protocol_trace.py")
        assert "decided value 1 in round 1" in out


class TestCli:
    def test_table1_quick(self, capsys):
        assert cli_main(["table1", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Atomic Broadcast" in out

    def test_fig7_quick(self, capsys):
        assert cli_main(["fig7", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "relative cost of agreement" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])
