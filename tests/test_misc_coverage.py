"""Cross-cutting coverage: shared coins in simulation, coin determinism,
CLI figure paths, node shell cas, OOC eviction accounting."""

import pytest

from repro import LanSimulation
from repro.eval.cli import main as cli_main

from util import InstantNet


class TestSharedCoinSimulation:
    def test_all_processes_toss_identically(self):
        sim = LanSimulation(n=4, seed=5, shared_coin=True)
        for round_number in range(16):
            tosses = {
                stack.toss_coin(("bc", "x"), round_number) for stack in sim.stacks
            }
            assert len(tosses) == 1

    def test_local_coins_diverge(self):
        sim = LanSimulation(n=4, seed=5, shared_coin=False)
        sequences = [
            tuple(stack.toss_coin(("bc", "x"), r) for r in range(32))
            for stack in sim.stacks
        ]
        assert len(set(sequences)) > 1

    def test_shared_coin_consensus_end_to_end(self):
        sim = LanSimulation(n=4, seed=5, shared_coin=True)
        done = [None] * 4
        for pid, stack in enumerate(sim.stacks):
            bc = stack.create("bc", ("b",))
            bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
        for pid, stack in enumerate(sim.stacks):
            stack.instance_at(("b",)).propose(pid % 2)
        reason = sim.run(until=lambda: all(v is not None for v in done), max_time=60)
        assert reason == "until"
        assert len(set(done)) == 1

    def test_seeded_coins_reproducible(self):
        def decisions(seed):
            sim = LanSimulation(n=4, seed=seed, jitter_s=0.001)
            done = [None] * 4
            for pid, stack in enumerate(sim.stacks):
                bc = stack.create("bc", ("b",))
                bc.on_deliver = lambda _i, v, pid=pid: done.__setitem__(pid, v)
            for pid, stack in enumerate(sim.stacks):
                stack.instance_at(("b",)).propose(pid % 2)
            sim.run(until=lambda: all(v is not None for v in done))
            return tuple(done), sim.now

        assert decisions(123) == decisions(123)


class TestCliFigures:
    def test_fig4_quick_runs(self, capsys):
        assert cli_main(["fig4", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "T_max" in out

    def test_fig5_quick_with_plot(self, capsys):
        assert cli_main(["fig5", "--quick", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "burst latency" in out
        assert "msg/s" in out


class TestNodeShellCas:
    def test_cas_through_shell(self):
        from repro.apps.kv_store import ReplicatedKvStore
        from repro.apps.node_cli import NodeShell

        net = InstantNet(4)
        stores = [
            ReplicatedKvStore(stack.create("ab", ("kv",))) for stack in net.stacks
        ]
        shell = NodeShell(stores[0])
        shell.handle("put k old")
        net.run()
        assert "replicating" in shell.handle("cas k old new")
        net.run()
        assert stores[2].get("k") == b"new"


class TestOocAccounting:
    def test_eviction_counted_in_stats(self):
        from repro.core.config import GroupConfig
        from repro.core.stack import Stack
        from repro.core.wire import encode_frame

        stack = Stack(
            GroupConfig(4), 0, outbox=lambda d, b: None, ooc_capacity=5
        )
        for i in range(12):
            stack.receive(1, encode_frame(("ghost", i), 0, None))
        assert stack.ooc_pending == 5
        assert stack.stats.ooc_stored == 12
        assert stack.stats.ooc_evicted == 7
