"""Applications: state machine replication and the replicated KV store."""

import pytest

from repro.apps.kv_store import KvCommand, ReplicatedKvStore
from repro.apps.state_machine import Command, ReplicatedStateMachine
from repro.core.stack import ProtocolFactory
from repro.adversary import byzantine_paper_faultload

from util import InstantNet, ShuffleNet


def counter_apply(state, command):
    if command.op == "add" and len(command.args) == 1:
        return state + command.args[0], state + command.args[0]
    return state, None


def make_rsms(net, apply_fn=counter_apply, initial=0):
    rsms = []
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            rsms.append(None)
            continue
        ab = stack.create("ab", ("app",))
        rsms.append(ReplicatedStateMachine(ab, apply_fn, initial))
    return rsms


class TestCommand:
    def test_roundtrip(self):
        command = Command("put", ["key", b"value", 7])
        assert Command.decode(command.encode()) == command

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            Command.decode(b"\x00")
        from repro.core.wire import encode_value

        with pytest.raises(ValueError):
            Command.decode(encode_value([1, 2]))
        with pytest.raises(ValueError):
            Command.decode(encode_value(["op", "not-a-list"]))


class TestStateMachine:
    def test_replicas_converge(self):
        net = InstantNet(4)
        rsms = make_rsms(net)
        rsms[0].submit(Command("add", [5]))
        rsms[1].submit(Command("add", [10]))
        net.run()
        assert [rsm.state for rsm in rsms] == [15, 15, 15, 15]

    def test_identical_logs(self):
        for seed in range(8):
            net = ShuffleNet(4, seed=seed)
            rsms = make_rsms(net)
            for pid in range(4):
                rsms[pid].submit(Command("add", [pid + 1]))
            net.run()
            logs = [[(d.sender, d.rbid) for d, _ in rsm.applied] for rsm in rsms]
            assert all(log == logs[0] for log in logs), f"seed {seed}"

    def test_state_digest_matches_across_replicas(self):
        net = InstantNet(4)
        rsms = make_rsms(net)
        rsms[2].submit(Command("add", [3]))
        net.run()
        digests = {rsm.state_digest() for rsm in rsms}
        assert len(digests) == 1

    def test_result_callback_fires_for_local_commands_only(self):
        net = InstantNet(4)
        rsms = make_rsms(net)
        results = []
        rsms[0].on_result = lambda cmd, res: results.append(res)
        rsms[0].submit(Command("add", [5]))
        rsms[1].submit(Command("add", [7]))
        net.run()
        assert results == [5] or results == [12]  # only p0's own command
        assert len(results) == 1

    def test_malformed_commands_skipped_deterministically(self):
        net = InstantNet(4)
        rsms = make_rsms(net)
        # A raw (non-Command) payload enters the log via the AB layer.
        net.stacks[3].instance_at(("app",)).broadcast(b"\xff garbage")
        rsms[0].submit(Command("add", [1]))
        net.run()
        assert [rsm.state for rsm in rsms] == [1, 1, 1, 1]
        assert all(rsm.malformed_commands == 1 for rsm in rsms)

    def test_non_bytes_payload_skipped(self):
        net = InstantNet(4)
        rsms = make_rsms(net)
        net.stacks[3].instance_at(("app",)).broadcast(["not", "bytes"])
        rsms[0].submit(Command("add", [2]))
        net.run()
        assert all(rsm.state == 2 for rsm in rsms)


class TestKvStore:
    def make_stores(self, net):
        stores = []
        for pid, stack in enumerate(net.stacks):
            ab = stack.create("ab", ("kv",))
            stores.append(ReplicatedKvStore(ab))
        return stores

    def test_put_get(self):
        net = InstantNet(4)
        stores = self.make_stores(net)
        stores[0].put("k", b"v")
        net.run()
        assert all(store.get("k") == b"v" for store in stores)

    def test_delete(self):
        net = InstantNet(4)
        stores = self.make_stores(net)
        stores[0].put("k", b"v")
        stores[1].delete("k")
        net.run()
        # Order is deterministic: (0,0) put before (1,0) delete in the
        # same batch.
        assert all(store.get("k") is None for store in stores)

    def test_cas_success_and_failure(self):
        net = InstantNet(4)
        stores = self.make_stores(net)
        stores[0].put("k", b"a")
        net.run()
        stores[1].cas("k", b"a", b"b")
        net.run()
        assert all(store.get("k") == b"b" for store in stores)
        stores[2].cas("k", b"stale", b"c")
        net.run()
        assert all(store.get("k") == b"b" for store in stores)

    def test_digest_convergence_under_concurrent_writes(self):
        for seed in range(6):
            net = ShuffleNet(4, seed=seed)
            stores = self.make_stores(net)
            for pid in range(4):
                stores[pid].put(f"key-{pid}", b"v%d" % pid)
                stores[pid].put("shared", b"from-%d" % pid)
            net.run()
            digests = {store.state_digest() for store in stores}
            assert len(digests) == 1, f"seed {seed}"
            assert len(stores[0]) == 5

    def test_keys_sorted(self):
        net = InstantNet(4)
        stores = self.make_stores(net)
        stores[0].put("b", b"2")
        stores[0].put("a", b"1")
        net.run()
        assert stores[1].keys() == ["a", "b"]

    def test_survives_byzantine_replica(self):
        factory = byzantine_paper_faultload(ProtocolFactory.default())
        for seed in range(5):
            net = ShuffleNet(4, seed=seed, factories={3: factory})
            stores = self.make_stores(net)
            stores[0].put("x", b"1")
            stores[1].put("y", b"2")
            net.run()
            correct = stores[:3]
            assert all(s.get("x") == b"1" and s.get("y") == b"2" for s in correct)
            assert len({s.state_digest() for s in correct}) == 1

    def test_ill_typed_commands_are_noops(self):
        net = InstantNet(4)
        stores = self.make_stores(net)
        # A corrupt replica submits a type-confused put via the RSM layer.
        stores[3].rsm.submit(Command("put", [7, 7]))
        stores[0].put("ok", b"1")
        net.run()
        assert all(store.keys() == ["ok"] for store in stores)
