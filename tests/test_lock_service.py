"""The distributed lock service: mutual exclusion, FIFO handover,
agreement across replicas, Byzantine resilience."""

from repro.adversary import byzantine_paper_faultload
from repro.apps.lock_service import DistributedLockService
from repro.core.stack import ProtocolFactory

from util import InstantNet, ShuffleNet


def make_services(net):
    services = []
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            services.append(None)
            continue
        services.append(DistributedLockService(stack.create("ab", ("lock",))))
    return services


class TestMutualExclusion:
    def test_first_acquire_granted(self):
        net = InstantNet(4)
        services = make_services(net)
        services[0].acquire("db")
        net.run()
        assert all(s.holder("db") == (0, "default") for s in services)

    def test_contenders_queue_fifo(self):
        net = InstantNet(4)
        services = make_services(net)
        for pid in range(4):
            services[pid].acquire("db")
        net.run()
        holder = services[0].holder("db")
        waiters = services[0].waiters("db")
        assert holder is not None
        assert len(waiters) == 3
        # All replicas agree on holder and queue.
        for service in services:
            assert service.holder("db") == holder
            assert service.waiters("db") == waiters

    def test_release_hands_over_in_order(self):
        net = InstantNet(4)
        services = make_services(net)
        for pid in range(3):
            services[pid].acquire("db")
        net.run()
        first = services[0].holder("db")
        queue = services[0].waiters("db")
        services[first[0]].release("db")
        net.run()
        assert all(s.holder("db") == queue[0] for s in services)

    def test_release_by_non_holder_rejected(self):
        net = InstantNet(4)
        services = make_services(net)
        services[0].acquire("db")
        net.run()
        services[1].release("db")
        net.run()
        assert services[2].holder("db") == (0, "default")

    def test_full_release_chain_empties_lock(self):
        net = InstantNet(4)
        services = make_services(net)
        for pid in range(4):
            services[pid].acquire("db")
        net.run()
        for _ in range(4):
            holder = services[0].holder("db")
            services[holder[0]].release("db")
            net.run()
        assert all(s.holder("db") is None for s in services)
        assert all(s.waiters("db") == [] for s in services)

    def test_duplicate_acquire_is_idempotent(self):
        net = InstantNet(4)
        services = make_services(net)
        services[0].acquire("db")
        services[0].acquire("db")
        net.run()
        assert services[1].waiters("db") == []

    def test_client_tags_are_independent(self):
        net = InstantNet(4)
        services = make_services(net)
        services[0].acquire("db", client_tag="alpha")
        services[0].acquire("db", client_tag="beta")
        net.run()
        assert services[0].held_by_me("db", "alpha")
        assert not services[0].held_by_me("db", "beta")
        assert services[2].waiters("db") == [(0, "beta")]

    def test_independent_locks(self):
        net = InstantNet(4)
        services = make_services(net)
        services[0].acquire("a")
        services[1].acquire("b")
        net.run()
        assert services[2].holder("a") == (0, "default")
        assert services[2].holder("b") == (1, "default")
        assert services[2].locks() == ["a", "b"]


class TestGrantNotifications:
    def test_immediate_grant_notifies(self):
        net = InstantNet(4)
        services = make_services(net)
        grants = []
        services[0].on_granted = lambda name, holder: grants.append((name, holder))
        services[0].acquire("db")
        net.run()
        assert grants == [("db", (0, "default"))]

    def test_handover_notifies_next_waiter(self):
        net = InstantNet(4)
        services = make_services(net)
        grants = []
        services[1].on_granted = lambda name, holder: grants.append((name, holder))
        services[0].acquire("db")
        net.run()
        services[1].acquire("db")
        net.run()
        assert grants == []  # still queued
        services[0].release("db")
        net.run()
        assert grants == [("db", (1, "default"))]

    def test_no_notification_for_remote_grants(self):
        net = InstantNet(4)
        services = make_services(net)
        grants = []
        services[2].on_granted = lambda name, holder: grants.append(holder)
        services[0].acquire("db")
        net.run()
        assert grants == []


class TestAgreementUnderAdversity:
    def test_shuffled_schedules_agree_on_holder(self):
        for seed in range(8):
            net = ShuffleNet(4, seed=seed)
            services = make_services(net)
            for pid in range(4):
                services[pid].acquire("contested")
            net.run()
            holders = {s.holder("contested") for s in services}
            assert len(holders) == 1, f"seed {seed}"
            queues = {tuple(s.waiters("contested")) for s in services}
            assert len(queues) == 1, f"seed {seed}"

    def test_byzantine_replica_cannot_steal_locks(self):
        factory = byzantine_paper_faultload(ProtocolFactory.default())
        for seed in range(5):
            net = ShuffleNet(4, seed=seed, factories={3: factory})
            services = make_services(net)
            services[0].acquire("db")
            net.run()
            # The Byzantine replica requests too; it queues like anyone.
            services[3].acquire("db")
            net.run()
            correct = services[:3]
            assert all(s.holder("db") == (0, "default") for s in correct), seed

    def test_crashed_replica_does_not_block_others(self):
        net = InstantNet(4, crashed={2})
        services = make_services(net)
        services[0].acquire("db")
        services[1].acquire("db")
        net.run()
        live = [services[pid] for pid in (0, 1, 3)]
        assert all(s.holder("db") == (0, "default") for s in live)
        services[0].release("db")
        net.run()
        assert all(s.holder("db") == (1, "default") for s in live)

    def test_ill_typed_commands_are_noops(self):
        from repro.apps.state_machine import Command

        net = InstantNet(4)
        services = make_services(net)
        services[0].acquire("db")
        services[3].rsm.submit(Command("acquire", ["db", "not-an-int", 7]))
        net.run()
        assert all(s.holder("db") == (0, "default") for s in services)
