"""The repro.obs metrics subsystem: primitives, registries, exporters,
runtime integration (simulator and TCP) and the CLI renderer."""

import asyncio
import io
import json
import math
import re
import subprocess
import sys

import pytest

from repro import GroupConfig, LanSimulation, TrustedDealer
from repro.obs.export import (
    read_jsonl,
    snapshot_records,
    to_prometheus,
    write_jsonl,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.transport import PeerAddress, RitasNode


class TestPrimitives:
    def test_counter_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(7)
        g.inc(3)
        g.dec(5)
        assert g.value == 5

    def test_histogram_exact_quantiles(self):
        h = Histogram("lat")
        for v in [0.001, 0.002, 0.003, 0.004, 0.100]:
            h.observe(v)
        assert h.count == 5
        assert h.exact
        assert h.quantile(0.5) == 0.003
        assert h.quantile(0.0) == 0.001
        assert h.quantile(1.0) == 0.100
        assert h.min == 0.001 and h.max == 0.100

    def test_histogram_unsorted_observations(self):
        h = Histogram("lat")
        for v in [5.0, 1.0, 3.0, 2.0, 4.0]:
            h.observe(v)
        assert h.quantile(0.5) == 3.0

    def test_histogram_interpolates_past_sample_cap(self):
        h = Histogram("lat", sample_cap=10)
        for i in range(100):
            h.observe(0.001 * (1 + i % 10))
        assert not h.exact
        p50 = h.quantile(0.5)
        # Interpolated within a log bucket: right magnitude, monotone.
        assert 0.001 < p50 < 0.02
        assert h.quantile(0.99) >= p50

    def test_histogram_quantile_empty_is_nan(self):
        assert math.isnan(Histogram("lat").quantile(0.5))
        with pytest.raises(ValueError):
            Histogram("lat").quantile(1.5)

    def test_histogram_merge(self):
        a, b = Histogram("lat"), Histogram("lat")
        for v in (0.001, 0.002):
            a.observe(v)
        for v in (0.003, 0.004):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.sum == pytest.approx(0.010)
        assert a.min == 0.001 and a.max == 0.004
        assert a.exact
        assert a.quantile(1.0) == 0.004

    def test_histogram_merge_rejects_different_buckets(self):
        a = Histogram("lat", buckets=LATENCY_BUCKETS)
        b = Histogram("lat", buckets=COUNT_BUCKETS)
        b.observe(3.0)
        with pytest.raises(ValueError):
            a.merge(b)

    def test_histogram_snapshot_shape(self):
        h = Histogram("lat")
        h.observe(0.005)
        snap = h.snapshot()
        assert snap["type"] == "histogram"
        assert snap["count"] == 1
        assert snap["p50"] == 0.005
        assert snap["exact"] is True
        # Sparse buckets: only the hit bucket is listed.
        assert len(snap["buckets"]) == 1
        le, count = snap["buckets"][0]
        assert count == 1 and le >= 0.005

    def test_bucket_bounds_are_fixed_and_ascending(self):
        assert list(LATENCY_BUCKETS) == sorted(LATENCY_BUCKETS)
        assert list(COUNT_BUCKETS) == sorted(COUNT_BUCKETS)
        assert LATENCY_BUCKETS[0] == pytest.approx(1e-6)
        assert COUNT_BUCKETS[0] == 1.0


class TestRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1) is reg.counter("a", x=1)
        assert reg.counter("a", x=1) is not reg.counter("a", x=2)
        assert len(reg) == 2

    def test_const_labels_merged(self):
        reg = MetricsRegistry(const_labels={"process": 3})
        c = reg.counter("a", kind="q")
        assert dict(c.labels) == {"process": "3", "kind": "q"}

    def test_type_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")
        with pytest.raises(TypeError):
            reg.histogram("a")

    def test_rebind_clock_and_incarnation(self):
        reg = MetricsRegistry(clock=lambda: 1.0)
        assert reg.now() == 1.0
        reg.rebind(clock=lambda: 9.0, incarnation=2)
        assert reg.now() == 9.0
        reg.counter("a").inc()
        records = reg.snapshot()
        assert all(r["time"] == 9.0 and r["incarnation"] == 2 for r in records)

    def test_null_registry_is_inert(self):
        assert not NULL_REGISTRY.enabled
        NULL_REGISTRY.counter("a", x=1).inc()
        NULL_REGISTRY.gauge("b").set(5)
        NULL_REGISTRY.histogram("c").observe(0.1)
        assert len(NULL_REGISTRY) == 0
        assert NULL_REGISTRY.snapshot() == []


def _demo_registry():
    reg = MetricsRegistry(clock=lambda: 42.0, const_labels={"process": 0})
    reg.counter("ritas_demo_total", kind="x").inc(3)
    reg.gauge("ritas_demo_depth").set(7)
    h = reg.histogram("ritas_demo_seconds")
    for v in (0.001, 0.010, 0.100):
        h.observe(v)
    return reg


class TestExporters:
    def test_jsonl_roundtrip(self):
        out = io.StringIO()
        count = write_jsonl(out, [_demo_registry()], meta={"scenario": "t"})
        records = read_jsonl(io.StringIO(out.getvalue()))
        assert len(records) == count == 4
        meta = records[0]
        assert meta["record"] == "meta"
        assert meta["version"] == "repro.obs/v1"
        assert meta["scenario"] == "t"
        assert meta["labels"] == {"process": "0"}
        names = {r["name"] for r in records[1:]}
        assert names == {
            "ritas_demo_total",
            "ritas_demo_depth",
            "ritas_demo_seconds",
        }

    def test_prometheus_exposition_parses(self):
        text = to_prometheus([_demo_registry()])
        lines = text.strip().splitlines()
        types = {}
        series = []
        sample_re = re.compile(
            r'^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (-?[0-9.e+-]+|\+Inf|NaN)$'
        )
        for line in lines:
            if line.startswith("# TYPE "):
                _, _, name, kind = line.split(" ")
                types[name] = kind
                continue
            match = sample_re.match(line)
            assert match, f"unparseable exposition line: {line!r}"
            series.append(match.group(1))
        assert types == {
            "ritas_demo_total": "counter",
            "ritas_demo_depth": "gauge",
            "ritas_demo_seconds": "histogram",
        }
        # Histogram encoding: cumulative buckets ending at +Inf == count.
        bucket_lines = [
            line for line in lines if line.startswith("ritas_demo_seconds_bucket")
        ]
        counts = [float(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3
        assert 'le="+Inf"' in bucket_lines[-1]
        assert any(line.startswith("ritas_demo_seconds_sum") for line in lines)
        assert any(line.startswith("ritas_demo_seconds_count") for line in lines)

    def test_prometheus_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x", path='a"b\\c\nd').inc()
        text = to_prometheus([reg])
        assert '\\"' in text and "\\\\" in text and "\\n" in text


def _run_sim_burst(k=8, n=4, seed=3):
    sim = LanSimulation(n=n, seed=seed)
    sim.enable_metrics()
    for pid in sim.config.process_ids:
        sim.stacks[pid].create("ab", ("obs",))
    for pid in sim.config.process_ids:
        ab = sim.stacks[pid].instance_at(("obs",))
        with sim.stacks[pid].coalesce():
            for _ in range(k // n):
                ab.broadcast(b"payload-%d" % pid)
    observer = sim.stacks[0].instance_at(("obs",))
    sim.run(until=lambda: observer.delivered_count >= k, max_time=60.0)
    sim.sample_metrics()
    return sim


class TestSimulatorIntegration:
    def test_burst_populates_per_protocol_latency(self):
        sim = _run_sim_burst()
        records = snapshot_records(
            sim.metric_registries(), meta={"runtime": "sim"}
        )
        latency = [
            r
            for r in records
            if r.get("name") == "ritas_instance_latency_seconds"
        ]
        protocols = {r["labels"]["protocol"] for r in latency}
        # The AB burst exercises the whole stack beneath it.
        assert {"rb", "eb", "bc", "mvc", "ab"} <= protocols
        for r in latency:
            assert r["count"] > 0
            assert r["p50"] <= r["p95"] <= r["p99"]

    def test_metrics_disabled_by_default(self):
        sim = LanSimulation(n=4, seed=3)
        assert all(not s.metrics.enabled for s in sim.stacks)
        assert sim.metric_registries() == []
        sim.sample_metrics()  # no-op, must not blow up

    def test_registry_survives_restart(self):
        sim = LanSimulation(n=4, seed=5)
        sim.enable_metrics()
        registry = sim.stacks[1].metrics
        registry.counter("probe").inc()
        stack = sim.restart_process(1)
        assert stack.metrics is registry
        assert registry.incarnation == 1
        assert registry.counter("probe").value == 1

    def test_gauges_zero_after_quiescence(self):
        sim = _run_sim_burst()
        sim.run(max_time=120.0)  # drain everything in flight
        sim.sample_metrics()
        for registry in sim.metric_registries():
            for metric in registry.metrics():
                if metric.name in (
                    "ritas_send_queue_frames",
                    "ritas_send_queue_bytes",
                    "ritas_ooc_pending",
                    "ritas_ooc_bytes",
                    "ritas_ab_pending_local",
                ):
                    assert metric.value == 0, (metric.name, dict(metric.labels))


def _run_tcp_scenario(tmp_path):
    async def scenario():
        config = GroupConfig(4)
        dealer = TrustedDealer(4, seed=b"obs-tcp")
        addresses = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
        nodes = [
            RitasNode(config, pid, addresses, dealer.keystore_for(pid))
            for pid in range(4)
        ]
        for node in nodes:
            await node.listen()
        bound = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
        for node in nodes:
            node.set_peer_addresses(bound)
        for node in nodes:
            await node.connect()
        try:
            registries = [node.enable_metrics() for node in nodes]
            delivered = [0] * 4
            for pid, node in enumerate(nodes):
                ab = node.stack.create("ab", ("obs",))
                ab.on_deliver = lambda _i, _d, pid=pid: delivered.__setitem__(
                    pid, delivered[pid] + 1
                )
            for node in nodes:
                node.stack.instance_at(("obs",)).broadcast(b"tcp-metric")
            for _ in range(500):
                if all(d >= 4 for d in delivered):
                    break
                await asyncio.sleep(0.02)
            else:
                raise TimeoutError("TCP metrics run did not converge")
            for node in nodes:
                node.sample_metrics()
            return snapshot_records(registries, meta={"runtime": "tcp"})
        finally:
            for node in nodes:
                await node.close()

    return asyncio.run(scenario())


class TestTcpIntegration:
    def test_tcp_snapshot_has_latency_histograms(self, tmp_path):
        records = _run_tcp_scenario(tmp_path)
        latency = [
            r
            for r in records
            if r.get("name") == "ritas_instance_latency_seconds"
        ]
        assert latency
        assert {"rb", "ab"} <= {r["labels"]["protocol"] for r in latency}
        assert all(r["labels"]["runtime"] == "tcp" for r in latency)
        # Wall-clock latencies: positive and sane.
        assert all(0 < r["p50"] < 60 for r in latency)


class TestCli:
    def _write_snapshot(self, tmp_path):
        sim = _run_sim_burst()
        path = tmp_path / "snapshot.jsonl"
        with open(path, "w", encoding="utf-8") as out:
            write_jsonl(out, sim.metric_registries(), meta={"runtime": "sim"})
        return path

    def _cli(self, *args):
        return subprocess.run(
            [sys.executable, "-m", "repro.obs", *args],
            capture_output=True,
            text=True,
        )

    def test_summary_renders_histograms(self, tmp_path):
        path = self._write_snapshot(tmp_path)
        result = self._cli("summary", str(path))
        assert result.returncode == 0, result.stderr
        assert "ritas_instance_latency_seconds" in result.stdout
        assert "p50" in result.stdout and "p99" in result.stdout
        assert "protocol=ab" in result.stdout

    def test_summary_from_tcp_snapshot(self, tmp_path):
        records = _run_tcp_scenario(tmp_path)
        path = tmp_path / "tcp.jsonl"
        with open(path, "w", encoding="utf-8") as out:
            for record in records:
                out.write(json.dumps(record) + "\n")
        result = self._cli(
            "summary", str(path), "--metric", "ritas_instance_latency_seconds"
        )
        assert result.returncode == 0, result.stderr
        assert "ritas_instance_latency_seconds" in result.stdout
        assert "runtime=tcp" in result.stdout

    def test_prom_rerender_matches_live_exposition(self, tmp_path):
        path = self._write_snapshot(tmp_path)
        result = self._cli("prom", str(path))
        assert result.returncode == 0, result.stderr
        assert "# TYPE ritas_instance_latency_seconds histogram" in result.stdout
        assert 'le="+Inf"' in result.stdout

    def test_demo_writes_loadable_snapshot(self, tmp_path):
        path = tmp_path / "demo.jsonl"
        result = self._cli("demo", "--out", str(path), "--k", "8")
        assert result.returncode == 0, result.stderr
        with open(path, encoding="utf-8") as handle:
            records = read_jsonl(handle)
        assert any(r.get("record") == "meta" for r in records)
        assert any(
            r.get("name") == "ritas_instance_latency_seconds" for r in records
        )
