"""The wire codec: canonical values and defensive frame decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import WireFormatError
from repro.core.wire import (
    MAX_BATCH_FRAMES,
    decode_batch,
    decode_frame,
    decode_value,
    encode_batch,
    encode_frame,
    encode_memo_clear,
    encode_value,
    encode_value_cached,
    is_batch,
)


class TestValueRoundtrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            1,
            -1,
            2**64,
            -(2**64),
            b"",
            b"payload",
            "",
            "héllo",
            [],
            [1, 2, 3],
            [None, True, b"x", "y", [-5, []]],
        ],
    )
    def test_roundtrip(self, value):
        assert decode_value(encode_value(value)) == value

    def test_tuple_decodes_as_list(self):
        assert decode_value(encode_value((1, 2))) == [1, 2]

    def test_bool_distinct_from_int(self):
        assert encode_value(True) != encode_value(1)
        assert encode_value(False) != encode_value(0)

    def test_bytes_distinct_from_str(self):
        assert encode_value(b"a") != encode_value("a")

    def test_canonical_equal_values_equal_bytes(self):
        a = encode_value([b"v", [1, 2, None]])
        b = encode_value([b"v", [1, 2, None]])
        assert a == b

    def test_unencodable_type_rejected(self):
        with pytest.raises(TypeError):
            encode_value({"not": "supported"})

    def test_nesting_depth_capped(self):
        value: list = []
        for _ in range(40):
            value = [value]
        with pytest.raises(ValueError):
            encode_value(value)


class TestValueDecodeDefensive:
    """A corrupt process controls these bytes: no decode may crash."""

    def test_empty_input(self):
        with pytest.raises(WireFormatError):
            decode_value(b"")

    def test_unknown_tag(self):
        with pytest.raises(WireFormatError):
            decode_value(b"\xff")

    def test_truncated_length(self):
        with pytest.raises(WireFormatError):
            decode_value(b"\x04\x00\x00")

    def test_truncated_body(self):
        with pytest.raises(WireFormatError):
            decode_value(b"\x04\x00\x00\x00\x05ab")

    def test_trailing_garbage(self):
        with pytest.raises(WireFormatError):
            decode_value(encode_value(1) + b"\x00")

    def test_empty_int_encoding(self):
        with pytest.raises(WireFormatError):
            decode_value(b"\x03\x00\x00\x00\x00")

    def test_invalid_utf8(self):
        with pytest.raises(WireFormatError):
            decode_value(b"\x05\x00\x00\x00\x01\xff")

    def test_huge_length_field_rejected_without_allocation(self):
        with pytest.raises(WireFormatError):
            decode_value(b"\x04\xff\xff\xff\xff")

    def test_list_count_bomb_rejected(self):
        # Claims 2^31 elements with no bodies.
        with pytest.raises(WireFormatError):
            decode_value(b"\x06\x80\x00\x00\x00")

    def test_deep_nesting_rejected(self):
        data = b"\x06\x00\x00\x00\x01" * 30 + b"\x00"
        with pytest.raises(WireFormatError):
            decode_value(data)

    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_value(data)
        except WireFormatError:
            pass


class TestFrames:
    def test_roundtrip(self):
        path = ("ab", 0, "mvc", 3, "rb", 1, 2, 0)
        encoded = encode_frame(path, 2, b"payload")
        assert decode_frame(encoded) == (path, 2, b"payload")

    def test_empty_path(self):
        assert decode_frame(encode_frame((), 0, None)) == ((), 0, None)

    def test_mtype_range_enforced_on_encode(self):
        with pytest.raises(ValueError):
            encode_frame(("x",), 256, None)
        with pytest.raises(ValueError):
            encode_frame(("x",), -1, None)

    def test_unsupported_version(self):
        frame = bytearray(encode_frame(("x",), 0, None))
        frame[0] = 99
        with pytest.raises(WireFormatError):
            decode_frame(bytes(frame))

    def test_empty_frame(self):
        with pytest.raises(WireFormatError):
            decode_frame(b"")

    def test_body_not_a_list(self):
        with pytest.raises(WireFormatError):
            decode_frame(b"\x01" + encode_value(b"nope"))

    def test_bool_path_component_rejected(self):
        frame = b"\x01" + encode_value([[True], 0, None])
        with pytest.raises(WireFormatError):
            decode_frame(frame)

    def test_nested_path_component_rejected(self):
        frame = b"\x01" + encode_value([[[1]], 0, None])
        with pytest.raises(WireFormatError):
            decode_frame(frame)

    def test_out_of_range_mtype_rejected_on_decode(self):
        frame = b"\x01" + encode_value([["x"], 999, None])
        with pytest.raises(WireFormatError):
            decode_frame(frame)

    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_frame(data)
        except WireFormatError:
            pass


class TestBatchContainers:
    def frames(self):
        return [encode_frame(("t", i), 0, b"x" * i) for i in range(3)]

    def test_roundtrip(self):
        frames = self.frames()
        assert decode_batch(encode_batch(frames)) == frames

    def test_is_batch_discriminates(self):
        frames = self.frames()
        assert is_batch(encode_batch(frames))
        assert not is_batch(frames[0])
        assert not is_batch(b"")

    def test_single_frame_batch_roundtrip(self):
        frame = encode_frame(("t",), 1, b"solo")
        assert decode_batch(encode_batch([frame])) == [frame]

    def test_nested_batch_roundtrip(self):
        """A batch is itself a channel unit, so it may ride in a batch."""
        inner = encode_batch(self.frames())
        outer = encode_batch([inner, self.frames()[0]])
        members = decode_batch(outer)
        assert members[0] == inner
        assert decode_batch(members[0]) == self.frames()

    def test_empty_batch_rejected_on_encode(self):
        with pytest.raises(ValueError):
            encode_batch([])

    def test_over_cap_rejected_on_encode(self):
        frame = encode_frame(("t",), 0, None)
        with pytest.raises(ValueError):
            encode_batch([frame] * (MAX_BATCH_FRAMES + 1))

    def test_empty_member_rejected_on_encode(self):
        with pytest.raises(ValueError):
            encode_batch([b""])

    def test_decode_plain_frame_rejected(self):
        with pytest.raises(WireFormatError, match="not a batch"):
            decode_batch(self.frames()[0])

    def test_decode_truncated_count(self):
        with pytest.raises(WireFormatError):
            decode_batch(b"\x42\x00\x00")

    def test_decode_zero_count(self):
        with pytest.raises(WireFormatError, match="empty"):
            decode_batch(b"\x42\x00\x00\x00\x00")

    def test_decode_count_over_cap_without_allocation(self):
        with pytest.raises(WireFormatError, match="cap"):
            decode_batch(b"\x42\xff\xff\xff\xff")

    def test_decode_truncated_member(self):
        data = encode_batch(self.frames())
        with pytest.raises(WireFormatError):
            decode_batch(data[:-1])

    def test_decode_trailing_garbage(self):
        with pytest.raises(WireFormatError, match="trailing"):
            decode_batch(encode_batch(self.frames()) + b"\x00")

    def test_decode_empty_member(self):
        # count=1, member length 0.
        with pytest.raises(WireFormatError, match="empty frame"):
            decode_batch(b"\x42\x00\x00\x00\x01\x00\x00\x00\x00")

    @given(st.binary(max_size=300))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_batch(data)
        except WireFormatError:
            pass


class TestEncodeMemo:
    def setup_method(self):
        encode_memo_clear()

    @pytest.mark.parametrize(
        "value",
        [None, True, False, 0, 1, -(2**64), b"", b"x", "x", [1, [b"y", None]]],
    )
    def test_cached_matches_plain(self, value):
        assert encode_value_cached(value) == encode_value(value)
        # Second call hits the memo; bytes must be identical.
        assert encode_value_cached(value) == encode_value(value)

    def test_bool_not_conflated_with_int(self):
        """``True == 1`` and they hash alike, but encodings differ."""
        assert encode_value_cached(1) == encode_value(1)
        assert encode_value_cached(True) == encode_value(True)
        assert encode_value_cached(True) != encode_value_cached(1)
        assert encode_value_cached(0) != encode_value_cached(False)

    def test_mutation_after_encode_does_not_poison(self):
        value = [1, 2]
        first = encode_value_cached(value)
        value.append(3)
        assert encode_value_cached(value) == encode_value([1, 2, 3])
        assert encode_value_cached([1, 2]) == first

    def test_bytearray_keys_like_bytes(self):
        assert encode_value_cached(bytearray(b"ab")) == encode_value(b"ab")
        assert encode_value_cached(b"ab") == encode_value(b"ab")

    def test_unencodable_type_still_rejected(self):
        with pytest.raises(TypeError):
            encode_value_cached({"not": "supported"})

    def test_memo_is_bounded(self):
        from repro.core.wire import _ENCODE_MEMO_MAX, _encode_memo

        for i in range(_ENCODE_MEMO_MAX * 2):
            encode_value_cached(i)
        assert len(_encode_memo) <= _ENCODE_MEMO_MAX


@given(
    st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.binary(max_size=64)
        | st.text(max_size=32),
        lambda children: st.lists(children, max_size=6),
        max_leaves=25,
    )
)
@settings(max_examples=300)
def test_property_value_roundtrip(value):
    assert decode_value(encode_value(value)) == value


@given(
    st.lists(
        st.integers(min_value=0, max_value=2**31) | st.text(max_size=12),
        max_size=8,
    ),
    st.integers(min_value=0, max_value=255),
    st.binary(max_size=128),
)
@settings(max_examples=200)
def test_property_frame_roundtrip(path, mtype, payload):
    decoded_path, decoded_mtype, decoded_payload = decode_frame(
        encode_frame(tuple(path), mtype, payload)
    )
    assert decoded_path == tuple(path)
    assert decoded_mtype == mtype
    assert decoded_payload == payload
