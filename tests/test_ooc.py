"""The out-of-context message table (Section 3.4 of the paper)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mbuf import Mbuf
from repro.core.ooc import OocTable


def mk(path, src=0):
    return Mbuf(src=src, path=tuple(path), mtype=0, payload=None)


class TestStoreDrain:
    def test_exact_path_drain(self):
        table = OocTable()
        table.store(mk(("a", 1)))
        drained = table.drain_prefix(("a", 1))
        assert len(drained) == 1
        assert len(table) == 0

    def test_prefix_drain_catches_descendants(self):
        table = OocTable()
        table.store(mk(("a", 1, "rb", 0)))
        table.store(mk(("a", 1, "rb", 1)))
        table.store(mk(("a", 2)))
        drained = table.drain_prefix(("a", 1))
        assert len(drained) == 2
        assert len(table) == 1

    def test_prefix_is_componentwise_not_string(self):
        table = OocTable()
        table.store(mk(("ab",)))
        assert table.drain_prefix(("a",)) == []

    def test_fifo_within_path(self):
        table = OocTable()
        first, second = mk(("x",), src=1), mk(("x",), src=2)
        table.store(first)
        table.store(second)
        assert table.drain_prefix(("x",)) == [first, second]

    def test_drain_empty(self):
        assert OocTable().drain_prefix(("nope",)) == []

    def test_has_prefix(self):
        table = OocTable()
        table.store(mk(("a", 1, "b")))
        assert table.has_prefix(("a",))
        assert table.has_prefix(("a", 1))
        assert not table.has_prefix(("a", 2))

    def test_purge_counts(self):
        table = OocTable()
        table.store(mk(("a",)))
        table.store(mk(("a",)))
        assert table.purge_prefix(("a",)) == 2
        assert len(table) == 0


class TestBounds:
    def test_capacity_evicts_oldest(self):
        table = OocTable(capacity=3)
        for i in range(5):
            table.store(mk(("p", i)))
        assert len(table) == 3
        assert table.evictions == 2
        # Oldest two paths are gone, newest three remain.
        assert not table.has_prefix(("p", 0))
        assert not table.has_prefix(("p", 1))
        assert table.has_prefix(("p", 4))

    def test_eviction_within_shared_path(self):
        table = OocTable(capacity=2)
        table.store(mk(("x",), src=1))
        table.store(mk(("x",), src=2))
        table.store(mk(("x",), src=3))
        drained = table.drain_prefix(("x",))
        assert [m.src for m in drained] == [2, 3]

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            OocTable(capacity=0)

    def test_pending_paths(self):
        table = OocTable()
        table.store(mk(("a",)))
        table.store(mk(("b",)))
        assert sorted(table.pending_paths()) == [("a",), ("b",)]


@given(
    st.lists(
        st.tuples(
            st.lists(st.integers(0, 3), min_size=1, max_size=3),
            st.integers(0, 3),
        ),
        max_size=40,
    )
)
@settings(max_examples=150)
def test_property_size_accounting(entries):
    """len(table) always equals stored minus drained minus evicted."""
    table = OocTable(capacity=10)
    stored = 0
    drained = 0
    for path, _ in entries:
        table.store(mk(tuple(path)))
        stored += 1
    for path, _ in entries[: len(entries) // 2]:
        drained += len(table.drain_prefix(tuple(path)))
    assert len(table) == stored - drained - table.evictions
