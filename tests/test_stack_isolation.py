"""Two stacks in one process must not share any protocol state.

The sharded host (:class:`repro.shard.node.ShardedNode`, the sharded
simulation) runs several stacks per OS process.  Everything that used to
be effectively process-global -- dealer key derivation, shared-coin
secrets, RNG streams, metrics registries, the wire encode memo -- must
be scoped per stack, or co-hosted groups could forge each other's MACs,
bias each other's coins, or cross-pollinate metrics.  These are the
regression tests for that audit.
"""

from repro.core.config import GroupConfig
from repro.core.wire import encode_memo_clear, encode_value, encode_value_cached
from repro.crypto.coin import SharedCoinDealer
from repro.crypto.keys import TrustedDealer
from repro.net.network import LanSimulation
from repro.net.simulator import EventLoop
from repro.obs.metrics import MetricsRegistry
from repro.shard.node import default_keystores
from repro.shard.sim import sharded_configs


class TestKeyScoping:
    def test_group_tag_scopes_dealer_seeds(self):
        """Same master seed, different tags -> disjoint pairwise keys;
        same tag -> the same keys on every process (still one group)."""
        a, b = sharded_configs(GroupConfig(4), ["a", "b"])
        ks_a0, ks_b0 = default_keystores([a, b], seed=1, process_id=0)
        ks_a1, ks_b1 = default_keystores([a, b], seed=1, process_id=1)
        # Within a shard, the 0<->1 pairwise key matches at both ends...
        assert ks_a0.key_for(1) == ks_a1.key_for(0)
        assert ks_b0.key_for(1) == ks_b1.key_for(0)
        # ...but the two shards' keys have nothing in common.
        assert ks_a0.key_for(1) != ks_b0.key_for(1)

    def test_untagged_derivation_is_the_legacy_one(self):
        """group_tag='' must reproduce the exact pre-sharding keys, or
        mixed sharded/unsharded deployments would split-brain."""
        config = GroupConfig(4)
        (scoped,) = default_keystores([config], seed=7, process_id=2)
        legacy = TrustedDealer(4, seed=b"7").keystore_for(2)
        assert scoped.key_for(0) == legacy.key_for(0)
        assert scoped.key_for(3) == legacy.key_for(3)


class TestCoinScoping:
    def test_scoped_secrets_give_independent_coin_sequences(self):
        a, b = sharded_configs(GroupConfig(4), ["a", "b"])
        coin_a = SharedCoinDealer(
            secret=a.scoped_seed("ritas-coin/1/4").encode()
        ).coin_for(0)
        coin_b = SharedCoinDealer(
            secret=b.scoped_seed("ritas-coin/1/4").encode()
        ).coin_for(0)
        tosses_a = [coin_a.toss(b"inst", r) for r in range(64)]
        tosses_b = [coin_b.toss(b"inst", r) for r in range(64)]
        # Identical instance tags and rounds, different shard secrets:
        # the sequences must diverge (64 equal fair tosses ~ 2^-64).
        assert tosses_a != tosses_b

    def test_stack_rngs_diverge_across_shards(self):
        """Two same-seed sims differing only in group_tag seed their
        stacks' RNG streams differently -- co-hosted groups never share
        (or repeat) each other's coin randomness."""

        def streams(tag):
            sim = LanSimulation(GroupConfig(4, group_tag=tag), seed=3)
            return [sim.stacks[pid].rng.getrandbits(64) for pid in range(4)]

        assert streams("a") != streams("b")
        # Same tag, same seed -> same streams (replay determinism).
        assert streams("a") == streams("a")


class TestTwoStacksOneProcess:
    def test_two_groups_share_a_loop_without_interference(self):
        """The core regression: two same-seed groups on one EventLoop
        (one process), distinguished only by group_tag, both complete an
        AB burst and neither observes the other's traffic."""
        loop = EventLoop()
        sims = [
            LanSimulation(GroupConfig(4, group_tag=tag), seed=17, loop=loop)
            for tag in ("a", "b")
        ]
        logs = [[], []]
        for index, sim in enumerate(sims):
            for pid in sim.config.process_ids:
                ab = sim.stacks[pid].create("ab", ("t",))
                if pid == 0:
                    ab.on_deliver = lambda _i, d, log=logs[index]: log.append(
                        bytes(d.payload)
                    )
        for index, sim in enumerate(sims):
            for pid in sim.config.process_ids:
                stack = sim.stacks[pid]
                with stack.coalesce():
                    stack.instance_at(("t",)).broadcast(f"g{index}".encode())
        reason = loop.run(
            until=lambda: all(len(log) >= 4 for log in logs), max_time=60.0
        )
        assert reason == "until"
        assert set(logs[0]) == {b"g0"} and set(logs[1]) == {b"g1"}


class TestMetricsIsolation:
    def test_labeled_views_share_store_but_not_series(self):
        registry = MetricsRegistry(const_labels={"process": 0})
        view_a = registry.labeled(shard="a")
        view_b = registry.labeled(shard="b")
        view_a.counter("ops_total").inc()
        view_a.counter("ops_total").inc()
        view_b.counter("ops_total").inc()
        by_shard = {
            metric["labels"]["shard"]: metric["value"]
            for metric in registry.snapshot()
            if metric["name"] == "ops_total"
        }
        assert by_shard == {"a": 2, "b": 1}

    def test_nested_labels_compose(self):
        registry = MetricsRegistry()
        view = registry.labeled(shard="a").labeled(service="kv")
        view.counter("c").inc()
        (metric,) = [m for m in registry.snapshot() if m["name"] == "c"]
        assert metric["labels"]["shard"] == "a"
        assert metric["labels"]["service"] == "kv"


class TestWireMemoSoundness:
    def test_memo_is_content_addressed_across_stacks(self):
        """The encode memo IS process-global -- that is safe exactly
        because it is keyed by value content, never by which stack asked.
        Interleaved cached encodes from two 'shards' must match fresh
        uncached encodes bit-for-bit."""
        encode_memo_clear()
        payload_a = ["shard-a", 1, b"x" * 64]
        payload_b = ["shard-b", 1, b"x" * 64]
        interleaved = [
            encode_value_cached(payload_a),
            encode_value_cached(payload_b),
            encode_value_cached(payload_a),
            encode_value_cached(payload_b),
        ]
        assert interleaved[0] == interleaved[2] == encode_value(payload_a)
        assert interleaved[1] == interleaved[3] == encode_value(payload_b)
        assert interleaved[0] != interleaved[1]
