"""Unit coverage for :mod:`repro.net.links` -- the per-link behavior catalog.

Behaviors are tested directly against a seeded ``random.Random`` (the
contract hands them one), then :class:`LinkModel`'s seeding/override/
reset machinery, then the two matrix builders, and finally the property
the per-link RNG design exists for: traffic on one link must not
perturb the randomness another link sees.
"""

import random

import pytest

from repro.net.links import (
    Chain,
    Degrading,
    Delay,
    Duplicating,
    FlakyMac,
    LinkBehavior,
    LinkModel,
    Lossy,
    Reordering,
    latency_matrix,
    zoned_matrix,
)
from repro.net.network import LanSimulation


def _draw(behavior, rng=None, now=0.0):
    return behavior.deliveries(
        rng or random.Random(1), src=0, dest=1, size=100, now=now
    )


class TestBehaviors:
    def test_perfect_link_is_the_default(self):
        assert _draw(LinkBehavior()) == [(0.0, False)]

    def test_delay_adds_base_plus_bounded_jitter(self):
        assert _draw(Delay(base_s=0.01)) == [(0.01, False)]
        for _ in range(50):
            [(extra, corrupt)] = _draw(Delay(base_s=0.01, jitter_s=0.002))
            assert not corrupt
            assert 0.01 <= extra <= 0.012

    def test_lossy_is_delay_never_silence(self):
        assert _draw(Lossy(p=0.0)) == [(0.0, False)]
        for _ in range(50):
            copies = _draw(Lossy(p=0.4, rto_s=0.02))
            assert len(copies) == 1  # reliable channel: exactly one arrival
            assert copies[0][0] >= 0.0
        # p=1.0 hits the retransmission cap instead of looping forever:
        # 16 doubling RTOs, summed.
        [(delay, _)] = _draw(Lossy(p=1.0, rto_s=0.01))
        assert delay == pytest.approx(0.01 * (2**16 - 1))

    def test_duplicating_echoes_a_second_copy(self):
        assert _draw(Duplicating(p=0.0)) == [(0.0, False)]
        assert _draw(Duplicating(p=1.0, echo_delay_s=0.003)) == [
            (0.0, False),
            (0.003, False),
        ]

    def test_reordering_detours_within_spread(self):
        assert _draw(Reordering(p=0.0)) == [(0.0, False)]
        [(extra, corrupt)] = _draw(Reordering(p=1.0, spread_s=0.005))
        assert not corrupt
        assert 0.0 <= extra <= 0.005

    def test_flaky_mac_corrupts_then_retransmits_clean(self):
        assert _draw(FlakyMac(p=0.0)) == [(0.0, False)]
        assert _draw(FlakyMac(p=1.0, rto_s=0.01)) == [(0.0, True), (0.01, False)]

    def test_degrading_ramps_then_plateaus(self):
        link = Degrading(start_s=10.0, ramp_s=4.0, max_extra_s=0.008)
        assert _draw(link, now=5.0) == [(0.0, False)]
        assert _draw(link, now=12.0) == [(0.004, False)]
        assert _draw(link, now=100.0) == [(0.008, False)]
        # Degenerate ramp: instantly at the plateau.
        assert _draw(Degrading(ramp_s=0.0, max_extra_s=0.002), now=0.0) == [
            (0.002, False)
        ]

    def test_chain_sums_delays_ors_corruption_multiplies_copies(self):
        link = Chain((Delay(base_s=0.01), FlakyMac(p=1.0, rto_s=0.002)))
        assert _draw(link) == [(0.01, True), (0.012, False)]
        # Duplication behind loss duplicates the retransmitted copy too.
        link = Chain((Duplicating(p=1.0, echo_delay_s=0.005), Duplicating(p=1.0)))
        assert len(_draw(link)) == 4


class TestLinkModel:
    def test_must_bind_before_use(self):
        with pytest.raises(RuntimeError, match="bind"):
            LinkModel().deliveries(0, 1, 100, 0.0)

    def test_same_seed_same_draws(self):
        def trace(seed):
            model = LinkModel(default=Delay(jitter_s=0.01)).bind(seed)
            return [model.deliveries(0, 1, 100, 0.0) for _ in range(20)]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)

    def test_links_draw_from_independent_streams(self):
        model_a = LinkModel(default=Delay(jitter_s=0.01)).bind(7)
        model_b = LinkModel(default=Delay(jitter_s=0.01)).bind(7)
        # Model B carries heavy unrelated traffic on 2->3 interleaved
        # with the draws on 0->1; 0->1 must not notice.
        draws_a = [model_a.deliveries(0, 1, 100, 0.0) for _ in range(10)]
        draws_b = []
        for _ in range(10):
            model_b.deliveries(2, 3, 100, 0.0)
            draws_b.append(model_b.deliveries(0, 1, 100, 0.0))
            model_b.deliveries(2, 3, 100, 0.0)
        assert draws_a == draws_b

    def test_overrides_slowdowns_and_reset(self):
        model = LinkModel(
            behaviors={(0, 1): Delay(base_s=0.01)}, host_slowdowns={2: 100.0}
        )
        model.bind(3)
        assert model.cpu_factor(2) == 100.0
        assert model.cpu_factor(0) == 1.0
        model.set_behavior(1, 0, FlakyMac(p=1.0))
        model.set_default(Duplicating(p=1.0))
        model.set_host_slowdown(3, 50.0)
        model.set_host_slowdown(2, 1.0)  # 1.0 clears the entry
        assert model.cpu_factor(2) == 1.0
        assert model.deliveries(1, 0, 100, 0.0)[0][1] is True
        assert len(model.deliveries(3, 2, 100, 0.0)) == 2
        model.reset()
        # Constructor-time config is back...
        assert model.deliveries(0, 1, 100, 0.0) == [(0.01, False)]
        assert model.deliveries(1, 0, 100, 0.0) == [(0.0, False)]
        assert model.cpu_factor(2) == 100.0
        assert model.cpu_factor(3) == 1.0

    def test_reset_keeps_rng_position(self):
        # Clearing a fault must not replay past draws: the stream on a
        # link continues where it left off across reset().
        model = LinkModel(default=Delay(jitter_s=0.01))
        model.bind(7)
        first = model.deliveries(0, 1, 100, 0.0)
        model.reset()
        assert model.deliveries(0, 1, 100, 0.0) != first

    def test_rebind_resets_streams(self):
        model = LinkModel(default=Delay(jitter_s=0.01))
        model.bind(7)
        first = model.deliveries(0, 1, 100, 0.0)
        model.bind(7)
        assert model.deliveries(0, 1, 100, 0.0) == first


class TestMatrixBuilders:
    def test_latency_matrix_maps_per_link_delays(self):
        model = latency_matrix([[0, 0.001], [0.002, 0]], jitter_s=0.0)
        model.bind(1)
        assert model.deliveries(0, 1, 100, 0.0) == [(0.001, False)]
        assert model.deliveries(1, 0, 100, 0.0) == [(0.002, False)]

    def test_zoned_matrix_is_cheap_inside_expensive_across(self):
        model = zoned_matrix(((0, 1), (2, 3)), intra_s=1e-4, inter_s=0.02)
        model.bind(1)
        assert model.deliveries(0, 1, 100, 0.0) == [(1e-4, False)]
        assert model.deliveries(1, 0, 100, 0.0) == [(1e-4, False)]
        assert model.deliveries(2, 3, 100, 0.0) == [(1e-4, False)]
        assert model.deliveries(0, 2, 100, 0.0) == [(0.02, False)]
        assert model.deliveries(3, 1, 100, 0.0) == [(0.02, False)]

    def test_zoned_matrix_rejects_empty_zones(self):
        with pytest.raises(ValueError):
            zoned_matrix(())


class TestSimulatorJitterStreams:
    def test_jitter_draws_are_per_link_streams(self):
        """The satellite-1 regression: jitter on one link is a seeded
        per-link stream, so draws for unrelated links interleaved in any
        order never change what the observed link sees."""
        sim_a = LanSimulation(n=4, seed=11, jitter_s=0.005)
        sim_b = LanSimulation(n=4, seed=11, jitter_s=0.005)
        draws_a = [sim_a._link_jitter(0, 1) for _ in range(10)]
        draws_b = []
        for _ in range(10):
            sim_b._link_jitter(2, 3)  # unrelated cross traffic
            draws_b.append(sim_b._link_jitter(0, 1))
            sim_b._link_jitter(1, 0)  # even the reverse direction
        assert draws_a == draws_b
        assert all(0.0 <= draw <= 0.005 for draw in draws_a)
        # A different seed produces a different stream.
        sim_c = LanSimulation(n=4, seed=12, jitter_s=0.005)
        assert [sim_c._link_jitter(0, 1) for _ in range(10)] != draws_a

    def test_jittered_faulty_run_is_deterministic(self):
        """Same seed, same link model, same workload => identical
        delivery timeline, even with jitter, loss, and duplication in
        the mix."""

        def timeline():
            sim = LanSimulation(
                n=4,
                seed=11,
                jitter_s=0.002,
                link_model=LinkModel(
                    default=Chain((Lossy(p=0.1, rto_s=0.005), Duplicating(p=0.2)))
                ),
            )
            seen = []
            for pid in range(4):
                ab = sim.stacks[pid].create("ab", ("a",))
                if pid == 0:
                    ab.on_deliver = lambda _i, d: seen.append(
                        (sim.now, bytes(d.payload))
                    )
            for pid in range(4):
                sim.stacks[pid].instance_at(("a",)).broadcast(b"m%d" % pid)
            reason = sim.run(until=lambda: len(seen) >= 4, max_time=60)
            assert reason == "until"
            return seen

        assert timeline() == timeline()
