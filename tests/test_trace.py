"""Structured protocol tracing."""

import pytest

from repro.core.trace import (
    KIND_BROADCAST,
    KIND_CREATE,
    KIND_DECIDE,
    KIND_DELIVER,
    KIND_DESTROY,
    KIND_DROP,
    KIND_OOC,
    KIND_RECEIVE,
    KIND_ROUND,
    KIND_SEND,
    NULL_TRACER,
    TraceEvent,
    Tracer,
)

from util import InstantNet


def traced_net(n=4, **tracer_kwargs):
    net = InstantNet(n)
    tracers = []
    for stack in net.stacks:
        tracer = Tracer(**tracer_kwargs)
        stack.tracer = tracer
        tracers.append(tracer)
    return net, tracers


class TestTracer:
    def test_emit_and_select(self):
        tracer = Tracer()
        tracer.emit(0, KIND_SEND, ("a",), dest=1)
        tracer.emit(1, KIND_RECEIVE, ("a",), src=0)
        assert len(tracer) == 2
        sends = list(tracer.select(kind=KIND_SEND))
        assert len(sends) == 1
        assert sends[0].detail["dest"] == 1

    def test_select_by_process_and_prefix(self):
        tracer = Tracer()
        tracer.emit(0, KIND_SEND, ("a", 1))
        tracer.emit(0, KIND_SEND, ("b", 1))
        tracer.emit(2, KIND_SEND, ("a", 2))
        assert len(list(tracer.select(process=0))) == 2
        assert len(list(tracer.select(path_prefix=("a",)))) == 2
        assert len(list(tracer.select(process=0, path_prefix=("a",)))) == 1

    def test_capacity_ring(self):
        tracer = Tracer(capacity=3)
        for i in range(10):
            tracer.emit(0, KIND_SEND, (i,))
        assert len(tracer) == 3
        assert tracer.emitted == 10
        assert [e.path for e in tracer.events()] == [(7,), (8,), (9,)]

    def test_kind_filter_at_emit(self):
        tracer = Tracer(kinds={KIND_DECIDE})
        tracer.emit(0, KIND_SEND, ())
        tracer.emit(0, KIND_DECIDE, (), value=1)
        assert len(tracer) == 1

    def test_render_line(self):
        event = TraceEvent(time=0.001234, process=2, kind=KIND_DECIDE, path=("bc",),
                           detail={"value": 1})
        line = event.render()
        assert "p2" in line
        assert "decide" in line
        assert "value=1" in line

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0, KIND_SEND, ())
        tracer.clear()
        assert len(tracer) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_null_tracer_is_inert(self):
        NULL_TRACER.emit(0, KIND_SEND, ())
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.events() == []
        assert NULL_TRACER.render() == ""
        assert not NULL_TRACER.enabled


class TestSelectSnapshot:
    def test_emit_during_select_iteration(self):
        # Regression: select() used to walk the live deque lazily, so a
        # consumer that traced anything mid-iteration hit
        # "RuntimeError: deque mutated during iteration".
        tracer = Tracer()
        for i in range(5):
            tracer.emit(0, KIND_SEND, (i,))
        seen = []
        for event in tracer.select(kind=KIND_SEND):
            tracer.emit(0, KIND_RECEIVE, event.path, echoed=True)
            seen.append(event.path)
        assert seen == [(i,) for i in range(5)]
        assert len(list(tracer.select(kind=KIND_RECEIVE))) == 5

    def test_clear_during_select_iteration(self):
        tracer = Tracer()
        tracer.emit(0, KIND_SEND, ())
        tracer.emit(0, KIND_SEND, ())
        count = 0
        for _ in tracer.select():
            tracer.clear()
            count += 1
        assert count == 2

    def test_emit_during_select_at_capacity(self):
        # The nastiest variant: the ring is full, so every emit also
        # evicts the oldest event while we iterate.
        tracer = Tracer(capacity=4)
        for i in range(4):
            tracer.emit(0, KIND_SEND, (i,))
        walked = 0
        for event in tracer.select():
            tracer.emit(1, KIND_RECEIVE, event.path)
            walked += 1
        assert walked == 4


class TestDroppedEvents:
    def test_counts_ring_overflow(self):
        tracer = Tracer(capacity=3)
        assert tracer.dropped_events == 0
        for i in range(10):
            tracer.emit(0, KIND_SEND, (i,))
        assert tracer.dropped_events == 7

    def test_clear_counts_as_dropped(self):
        tracer = Tracer()
        tracer.emit(0, KIND_SEND, ())
        tracer.clear()
        assert tracer.dropped_events == 1

    def test_null_tracer_never_drops(self):
        assert NULL_TRACER.dropped_events == 0


class TestJsonlExport:
    def test_meta_record_stamps_drop_accounting(self):
        tracer = Tracer(capacity=2)
        for i in range(5):
            tracer.emit(0, KIND_SEND, (i,))
        records = tracer.to_records()
        meta = records[0]
        assert meta["record"] == "meta"
        assert meta["emitted"] == 5
        assert meta["retained"] == 2
        assert meta["dropped_events"] == 3
        assert meta["capacity"] == 2
        assert len(records) == 3

    def test_event_records_are_json_safe(self):
        import json

        tracer = Tracer()
        tracer.emit(
            0,
            KIND_DECIDE,
            ("bc", 7),
            digest=b"\xde\xad",
            values=(1, b"\x01"),
            exotic={"not", "json"},
        )
        records = tracer.to_records()
        text = json.dumps(records)  # must not raise
        event = records[1]
        assert event["path"] == ["bc", 7]
        assert event["detail"]["digest"] == "dead"
        assert event["detail"]["values"] == [1, "01"]
        assert isinstance(event["detail"]["exotic"], str)
        assert json.loads(text)[1] == event

    def test_write_jsonl_roundtrip(self):
        import io
        import json

        tracer = Tracer()
        tracer.emit(3, KIND_SEND, ("a",), dest=1)
        out = io.StringIO()
        tracer.write_jsonl(out)
        lines = [json.loads(line) for line in out.getvalue().splitlines()]
        assert lines[0]["record"] == "meta"
        assert lines[1] == {
            "record": "event",
            "time": 0.0,
            "process": 3,
            "kind": KIND_SEND,
            "path": ["a"],
            "detail": {"dest": 1},
        }

    def test_null_tracer_exports_nothing(self):
        import io

        out = io.StringIO()
        NULL_TRACER.write_jsonl(out)
        assert NULL_TRACER.to_records() == []
        assert out.getvalue() == ""


class TestStackIntegration:
    def test_consensus_emits_lifecycle_events(self):
        net, tracers = traced_net()
        for stack in net.stacks:
            stack.create("bc", ("b",))
        for stack in net.stacks:
            stack.instance_at(("b",)).propose(1)
        net.run()
        tracer = tracers[0]
        kinds = {event.kind for event in tracer.events()}
        assert KIND_CREATE in kinds
        assert KIND_SEND in kinds
        assert KIND_RECEIVE in kinds
        assert KIND_BROADCAST in kinds
        assert KIND_DELIVER in kinds
        assert KIND_ROUND in kinds
        decides = list(tracer.select(kind=KIND_DECIDE))
        assert len(decides) == 1
        assert decides[0].detail == {"value": 1, "round": 1}

    def test_destroy_emits(self):
        net, tracers = traced_net()
        instance = net.stacks[0].create("rb", ("x",), sender=0)
        instance.destroy()
        assert len(list(tracers[0].select(kind=KIND_DESTROY))) == 1

    def test_ooc_and_drop_events(self):
        from repro.core.wire import encode_frame

        net, tracers = traced_net()
        net.stacks[0].receive(1, b"garbage")
        net.stacks[0].receive(1, encode_frame(("nowhere",), 0, None))
        assert len(list(tracers[0].select(kind=KIND_DROP))) == 1
        assert len(list(tracers[0].select(kind=KIND_OOC))) == 1

    def test_tracing_off_by_default_and_free(self):
        net = InstantNet(4)
        assert net.stacks[0].tracer is NULL_TRACER
        for stack in net.stacks:
            stack.create("bc", ("b",))
        for stack in net.stacks:
            stack.instance_at(("b",)).propose(0)
        net.run()  # must simply work with the inert tracer
        assert net.stacks[0].instance_at(("b",)).decision == 0
