"""Randomized binary consensus: agreement, validity, one-round fast path,
congruence validation, and behaviour under crash/Byzantine faults."""

import pytest
from collections import Counter

from repro.core.binary_consensus import majority_value, strict_majority_value
from repro.core.errors import ProtocolViolationError

from util import InstantNet, ShuffleNet, decisions_of


def run_bc(net, proposals, path=("bc",)):
    """Create and propose on every non-crashed stack; run to quiescence."""
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.create("bc", path)
    for pid, stack in enumerate(net.stacks):
        if pid in net.crashed:
            continue
        stack.instance_at(path).propose(proposals[pid])
    net.run()
    return decisions_of(net, path)


class TestStepRules:
    def test_majority_prefers_zero_on_tie(self):
        assert majority_value(Counter({0: 2, 1: 2})) == 0

    def test_majority_strict_one(self):
        assert majority_value(Counter({0: 1, 1: 2})) == 1

    def test_strict_majority_needs_more_than_half_of_n(self):
        assert strict_majority_value(Counter({1: 3}), 4) == 1
        assert strict_majority_value(Counter({1: 2, 0: 1}), 4) is None
        assert strict_majority_value(Counter({0: 3, 1: 1}), 4) == 0

    def test_strict_majority_none_when_split(self):
        assert strict_majority_value(Counter({0: 2, 1: 2}), 4) is None


class TestAgreementValidity:
    @pytest.mark.parametrize("bit", [0, 1])
    def test_unanimous_proposal_decides_that_bit(self, bit):
        net = InstantNet(4)
        decisions = run_bc(net, [bit] * 4)
        assert decisions == [bit] * 4

    def test_unanimous_decides_in_one_round(self):
        net = InstantNet(4)
        run_bc(net, [1, 1, 1, 1])
        for stack in net.stacks:
            assert stack.instance_at(("bc",)).decision_round == 1

    @pytest.mark.parametrize("proposals", [[0, 0, 0, 1], [1, 0, 1, 1], [0, 1, 0, 1]])
    def test_mixed_proposals_agree(self, proposals):
        net = InstantNet(4)
        decisions = run_bc(net, proposals)
        assert len(set(decisions)) == 1
        assert decisions[0] in (0, 1)

    def test_agreement_on_shuffled_schedules(self):
        for seed in range(20):
            net = ShuffleNet(4, seed=seed)
            decisions = run_bc(net, [seed % 2, (seed + 1) % 2, 1, 0])
            assert len(set(decisions)) == 1, f"seed {seed}: {decisions}"

    def test_unanimity_respected_on_shuffled_schedules(self):
        for seed in range(10):
            net = ShuffleNet(4, seed=seed)
            decisions = run_bc(net, [1, 1, 1, 1])
            assert decisions == [1, 1, 1, 1], f"seed {seed}"

    def test_larger_group_n7(self):
        net = InstantNet(7)
        decisions = run_bc(net, [1, 0, 1, 0, 1, 0, 1])
        assert len(set(decisions)) == 1

    def test_n7_unanimous(self):
        net = InstantNet(7)
        assert run_bc(net, [0] * 7) == [0] * 7


class TestCrashFaults:
    def test_one_crashed_from_start(self):
        net = InstantNet(4, crashed={3})
        decisions = run_bc(net, [1, 1, 1, 1])
        assert decisions == [1, 1, 1]

    def test_crashed_with_mixed_proposals(self):
        for seed in range(10):
            net = ShuffleNet(4, seed=seed, crashed={0})
            decisions = run_bc(net, [0, 1, 0, 1])
            assert len(set(decisions)) == 1, f"seed {seed}"

    def test_two_crashed_in_n7(self):
        net = InstantNet(7, crashed={5, 6})
        decisions = run_bc(net, [1] * 7)
        assert decisions == [1] * 5


class TestApi:
    def test_out_of_domain_proposal_rejected(self):
        net = InstantNet(4)
        bc = net.stacks[0].create("bc", ("bc",))
        with pytest.raises(ValueError):
            bc.propose(2)

    def test_bool_proposal_rejected(self):
        net = InstantNet(4)
        bc = net.stacks[0].create("bc", ("bc",))
        with pytest.raises(ValueError):
            bc.propose(None)

    def test_double_proposal_rejected(self):
        net = InstantNet(4)
        bc = net.stacks[0].create("bc", ("bc",))
        bc.propose(1)
        with pytest.raises(ProtocolViolationError):
            bc.propose(0)

    def test_direct_frames_rejected(self):
        from repro.core.wire import encode_frame

        net = InstantNet(4)
        net.stacks[0].create("bc", ("bc",))
        net.stacks[0].receive(1, encode_frame(("bc",), 0, 1))
        assert net.stacks[0].stats.dropped["protocol-violation"] == 1

    def test_decision_recorded_in_stats(self):
        net = InstantNet(4)
        run_bc(net, [1, 1, 1, 1])
        stats = net.stacks[0].stats
        assert stats.decisions["bc"] == 1
        assert stats.consensus_rounds[("bc", 1)] == 1

    def test_decision_delivered_once(self):
        net = InstantNet(4)
        events = []
        for pid, stack in enumerate(net.stacks):
            bc = stack.create("bc", ("bc",))
            if pid == 0:
                bc.on_deliver = lambda _i, v: events.append(v)
        for stack in net.stacks:
            stack.instance_at(("bc",)).propose(1)
        net.run()
        assert events == [1]


class TestValidation:
    """The congruence rule: fabricated values are never accepted."""

    def _byzantine_step_frames(self, net, attacker, round_number, step, value):
        """Send raw RB INITs for the attacker's step broadcast."""
        from repro.core.reliable_broadcast import MSG_INIT

        path = ("bc", round_number, step, attacker)
        for dest in range(4):
            if dest == attacker:
                continue
            net.stacks[attacker].send_frame(dest, path, MSG_INIT, value)

    def test_unjustifiable_step2_value_ignored(self):
        """All correct propose 1; a corrupt process broadcasts 0 at step 2.
        No correct process can justify it, so the decision stands at 1 in
        round 1 -- the paper's 'processes that do not follow the protocol
        are ignored'."""
        for seed in range(8):
            net = ShuffleNet(4, seed=seed)
            for pid in range(3):
                net.stacks[pid].create("bc", ("bc",))
            for pid in range(3):
                net.stacks[pid].instance_at(("bc",)).propose(1)
            # Attacker p3 participates honestly at step 1 (else its step-2
            # lie is filtered even earlier) but lies at step 2.
            self._byzantine_step_frames(net, 3, 1, 1, 1)
            self._byzantine_step_frames(net, 3, 1, 2, 0)
            self._byzantine_step_frames(net, 3, 1, 3, 0)
            net.run()
            decisions = [
                net.stacks[pid].instance_at(("bc",)).decision for pid in range(3)
            ]
            assert decisions == [1, 1, 1], f"seed {seed}: {decisions}"

    def test_out_of_domain_step_values_ignored(self):
        """Garbage values (strings, large ints) never enter the counts."""
        net = InstantNet(4)
        for pid in range(3):
            net.stacks[pid].create("bc", ("bc",))
        for pid in range(3):
            net.stacks[pid].instance_at(("bc",)).propose(0)
        self._byzantine_step_frames(net, 3, 1, 1, "junk")
        self._byzantine_step_frames(net, 3, 1, 2, 17)
        self._byzantine_step_frames(net, 3, 1, 3, None)  # ⊥ at step 3 is
        # in-domain but unjustifiable when all step-2 values are equal
        net.run()
        decisions = [net.stacks[pid].instance_at(("bc",)).decision for pid in range(3)]
        assert decisions == [0, 0, 0]


class TestLazyExtraRound:
    def test_unanimous_decision_runs_single_round(self):
        """When everybody decides in round 1, round 2 must never run --
        the optimization that keeps the fast path at 3 steps."""
        net = InstantNet(4)
        run_bc(net, [1, 1, 1, 1])
        for stack in net.stacks:
            assert stack.instance_at(("bc",)).rounds_executed == 1

    def test_termination_under_adversarial_coin_luck(self):
        """Mixed proposals on many schedules: every run terminates within
        the frame budget and agrees (randomized termination in practice)."""
        outcomes = set()
        for seed in range(30):
            net = ShuffleNet(4, seed=seed)
            decisions = run_bc(net, [0, 0, 1, 1])
            assert len(set(decisions)) == 1
            outcomes.add(decisions[0])
        # Both outcomes occur across seeds -- the decision is schedule- and
        # coin-dependent, not hardwired.
        assert outcomes == {0, 1}
