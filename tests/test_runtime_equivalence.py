"""The sans-IO guarantee, across runtimes.

The same workload runs on the discrete-event simulator and on real
asyncio TCP.  Atomic broadcast fixes a total order *per run* -- batching
may differ between runs, so the orders themselves may differ -- but in
every run, on every runtime:

- all replicas agree on the log and the state (digests equal);
- the log contains exactly the submitted commands, no more, no less;
- the final state is the deterministic replay of that run's log.
"""

import asyncio

from repro import GroupConfig, LanSimulation, TrustedDealer
from repro.apps import ReplicatedKvStore
from repro.apps.kv_store import _apply_kv
from repro.apps.state_machine import Command
from repro.transport import PeerAddress, RitasNode

WORKLOAD = [
    (0, "put", "alpha", b"1"),
    (1, "put", "beta", b"2"),
    (2, "cas", "alpha", b"1", b"one"),
    (3, "put", "gamma", b"3"),
    (0, "delete", "beta"),
]


def apply_workload(stores):
    for op in WORKLOAD:
        replica, verb, *args = op
        getattr(stores[replica], verb)(*args)


def run_simulated():
    sim = LanSimulation(n=4, seed=77)
    stores = [
        ReplicatedKvStore(stack.create("ab", ("kv",))) for stack in sim.stacks
    ]
    apply_workload(stores)
    sim.run(
        until=lambda: all(len(s.rsm.applied) == len(WORKLOAD) for s in stores),
        max_time=60,
    )
    return stores


def run_tcp():
    async def scenario():
        config = GroupConfig(4)
        dealer = TrustedDealer(4, seed=b"equivalence")
        addresses = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
        nodes = [
            RitasNode(config, pid, addresses, dealer.keystore_for(pid))
            for pid in range(4)
        ]
        for node in nodes:
            await node.listen()
        bound = [PeerAddress("127.0.0.1", node.bound_port) for node in nodes]
        for node in nodes:
            node.set_peer_addresses(bound)
        for node in nodes:
            await node.connect()
        try:
            stores = [
                ReplicatedKvStore(node.stack.create("ab", ("kv",)))
                for node in nodes
            ]
            apply_workload(stores)
            for _ in range(500):
                if all(len(s.rsm.applied) == len(WORKLOAD) for s in stores):
                    break
                await asyncio.sleep(0.02)
            else:
                raise TimeoutError("TCP run did not converge")
            return stores
        finally:
            for node in nodes:
                await node.close()

    return asyncio.run(scenario())


def replay(log):
    """Deterministically replay a (delivery, command) log from scratch."""
    state: dict = {}
    for _, command in log:
        state, _ = _apply_kv(state, command)
    return state


def check_run_invariants(stores):
    digests = {store.state_digest() for store in stores}
    assert len(digests) == 1
    logs = [[(d.msg_id, c) for d, c in store.rsm.applied] for store in stores]
    assert all(log == logs[0] for log in logs)
    ids = [msg_id for msg_id, _ in logs[0]]
    assert len(ids) == len(set(ids)) == len(WORKLOAD)
    submitted = {
        (replica, verb, tuple(args)) for replica, verb, *args in WORKLOAD
    }
    applied = {
        (msg_id[0], command.op, tuple(command.args)) for msg_id, command in logs[0]
    }
    assert applied == submitted
    assert {k: v for k, v in stores[0].rsm.state.items()} == replay(
        stores[0].rsm.applied
    )
    return logs[0]


def test_simulated_run_invariants():
    check_run_invariants(run_simulated())


def test_tcp_run_invariants():
    check_run_invariants(run_tcp())


def test_runs_deliver_identical_command_sets():
    """Across runtimes the *set* of ordered commands is identical; the
    order itself is whatever that run agreed (batching may differ)."""
    sim_log = check_run_invariants(run_simulated())
    tcp_log = check_run_invariants(run_tcp())
    assert sorted(m for m, _ in sim_log) == sorted(m for m, _ in tcp_log)
