"""The paper's Section 4.3 claims, as an executable regression gate.

If a protocol or model change breaks the reproduction, this is the test
that says so -- with the claim's own evidence string in the failure.
"""

import pytest

from repro.eval.claims import ALL_CHECKS, check_all, format_results


@pytest.mark.parametrize("check", ALL_CHECKS, ids=lambda c: c.__name__)
def test_each_claim_reproduces(check):
    result = check(2)
    assert result.holds, f"claim {result.number} failed: {result.evidence}"


def test_formatting_lists_every_claim():
    results = check_all(seed=2)
    text = format_results(results)
    assert "8/8 claims reproduced" in text
    for number in range(1, 9):
        assert f"{number}." in text


def test_claim_numbers_are_dense_and_ordered():
    results = check_all(seed=2)
    assert [r.number for r in results] == list(range(1, 9))
