"""The RitasSession facade: instance naming, caching, concurrency."""

import asyncio

import pytest

from repro.core.config import GroupConfig
from repro.crypto.keys import TrustedDealer
from repro.transport.session import RitasSession
from repro.transport.tcp import PeerAddress


@pytest.fixture
def group4():
    return GroupConfig(4), TrustedDealer(4, seed=b"session-api")


def with_sessions(group, body):
    config, dealer = group

    async def scenario():
        addresses = [PeerAddress("127.0.0.1", 0) for _ in range(4)]
        sessions = [
            RitasSession(config, pid, addresses, dealer.keystore_for(pid))
            for pid in range(4)
        ]
        # Staged startup with ephemeral ports: bind all listeners, share
        # the bound ports, then connect.
        for session in sessions:
            await session.listen()
        bound = [
            PeerAddress("127.0.0.1", session.bound_port) for session in sessions
        ]
        for session in sessions:
            session.set_peer_addresses(bound)
        for session in sessions:
            await session.connect()
        try:
            return await asyncio.wait_for(body(sessions), timeout=30)
        finally:
            for session in sessions:
                await session.close()

    return asyncio.run(scenario())


class TestConsensusApi:
    def test_distinct_tags_are_distinct_instances(self, group4):
        async def body(sessions):
            first = asyncio.gather(
                *[s.binary_consensus("one", 1) for s in sessions]
            )
            second = asyncio.gather(
                *[s.binary_consensus("two", 0) for s in sessions]
            )
            return await first, await second

        first, second = with_sessions(group4, body)
        assert first == [1, 1, 1, 1]
        assert second == [0, 0, 0, 0]

    def test_decision_cached_for_repeat_calls(self, group4):
        async def body(sessions):
            decisions = await asyncio.gather(
                *[s.multivalued_consensus("cfg", b"value") for s in sessions]
            )
            # A second call with the same tag returns the cached decision
            # without re-proposing (the instance already decided).
            again = await sessions[0].multivalued_consensus("cfg", b"other")
            return decisions, again

        decisions, again = with_sessions(group4, body)
        assert decisions == [b"value"] * 4
        assert again == b"value"

    def test_concurrent_mixed_services(self, group4):
        async def body(sessions):
            bits = asyncio.gather(*[s.binary_consensus("b", 1) for s in sessions])
            vectors = asyncio.gather(
                *[s.vector_consensus("v", b"p%d" % s.process_id) for s in sessions]
            )
            await sessions[1].ab_broadcast(b"interleaved")
            deliveries = asyncio.gather(*[s.ab_recv() for s in sessions])
            return await bits, await vectors, await deliveries

        bits, vectors, deliveries = with_sessions(group4, body)
        assert bits == [1, 1, 1, 1]
        assert all(v == vectors[0] for v in vectors)
        assert all(d.payload == b"interleaved" for d in deliveries)

    def test_ab_stream_ordering(self, group4):
        async def body(sessions):
            for k in range(3):
                await sessions[k].ab_broadcast(b"msg-%d" % k)
            orders = []
            for session in sessions:
                one = [await session.ab_recv() for _ in range(3)]
                orders.append([(d.sender, d.rbid) for d in one])
            return orders

        orders = with_sessions(group4, body)
        assert all(order == orders[0] for order in orders)
