#!/usr/bin/env python3
"""Watch a consensus run itself: structured protocol tracing.

Attaches a tracer to one process and runs a binary consensus with mixed
proposals, then prints the decision-relevant events: rounds starting,
broadcasts going out, values being delivered, and the decide event --
the protocol's own story of the paper's "one round, three steps".

Run with:  python examples/protocol_trace.py
"""

from repro import LanSimulation
from repro.core.trace import KIND_BROADCAST, KIND_DECIDE, KIND_DELIVER, KIND_ROUND, Tracer


def main() -> None:
    sim = LanSimulation(n=4, seed=9)
    tracer = Tracer(
        clock=lambda: sim.now,
        kinds={KIND_ROUND, KIND_BROADCAST, KIND_DECIDE, KIND_DELIVER},
    )
    sim.stacks[0].tracer = tracer

    decisions = [None] * 4
    for pid, stack in enumerate(sim.stacks):
        bc = stack.create("bc", ("vote",))
        bc.on_deliver = lambda _i, v, pid=pid: decisions.__setitem__(pid, v)
    proposals = [1, 0, 1, 1]
    for pid, stack in enumerate(sim.stacks):
        stack.instance_at(("vote",)).propose(proposals[pid])
    sim.run(until=lambda: all(d is not None for d in decisions))

    print(f"proposals {proposals} -> decisions {decisions}\n")
    print("p0's protocol events (rounds, own broadcasts, deliveries, decide):\n")
    shown = 0
    for event in tracer.events():
        if event.kind == KIND_DELIVER and len(event.path) <= 2:
            continue  # the app-level delivery; inner ones are the story
        print(event.render())
        shown += 1
    decide = next(tracer.select(kind=KIND_DECIDE))
    print(
        f"\n{shown} events; decided value {decide.detail['value']} in round "
        f"{decide.detail['round']} at {decide.time * 1e3:.2f} ms -- "
        "three reliable-broadcast steps, exactly as Section 4.3 reports."
    )


if __name__ == "__main__":
    main()
