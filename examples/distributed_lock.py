#!/usr/bin/env python3
"""A distributed lock service riding the stack -- with a partition.

Four replicas coordinate a mutex through atomic broadcast.  Midway, the
network splits 2-2; because the stack is fully asynchronous, nothing
times out or elects anything: requests queue in flight, the split heals,
and the lock continues in exactly the agreed FIFO order.

Run with:  python examples/distributed_lock.py
"""

from repro import LanSimulation
from repro.apps import DistributedLockService
from repro.net.faults import FaultPlan, Partition


def holders_line(services) -> str:
    holder = services[0].holder("db-writer")
    waiting = services[0].waiters("db-writer")
    holder_text = f"p{holder[0]}" if holder else "(free)"
    queue_text = ", ".join(f"p{w[0]}" for w in waiting) or "(empty)"
    return f"holder: {holder_text:8s} queue: {queue_text}"


def main() -> None:
    split = Partition(start=0.015, end=0.120, islands=((0, 1), (2, 3)))
    sim = LanSimulation(n=4, seed=42, fault_plan=FaultPlan(partitions=[split]))

    services = []
    grants = []
    for pid, stack in enumerate(sim.stacks):
        service = DistributedLockService(stack.create("ab", ("locks",)))
        service.on_granted = (
            lambda name, holder, pid=pid: grants.append((round(sim.now * 1e3), pid))
        )
        services.append(service)

    print("four replicas contend for lock 'db-writer'")
    print(f"network splits {split.islands} at {split.start * 1e3:.0f} ms, "
          f"heals at {split.end * 1e3:.0f} ms\n")

    for pid in range(4):
        services[pid].acquire("db-writer")

    sim.run(until=lambda: len(services[0].waiters("db-writer")) == 3, max_time=30)
    print(f"t={sim.now * 1e3:6.1f} ms  all requests ordered   {holders_line(services)}")

    for _ in range(4):
        holder = services[0].holder("db-writer")
        services[holder[0]].release("db-writer")
        sim.run(
            until=lambda h=holder: services[0].holder("db-writer") != h, max_time=30
        )
        print(f"t={sim.now * 1e3:6.1f} ms  p{holder[0]} released        "
              f"{holders_line(services)}")

    print(f"\ngrant order (ms, replica): {grants}")
    fifo = [pid for _, pid in grants]
    print(f"grants followed the agreed FIFO order: {fifo == sorted(set(fifo), key=fifo.index)}")
    agree = len({tuple(s.waiters('db-writer')) for s in services}) == 1
    print(f"replicas agree on final state: {agree}")


if __name__ == "__main__":
    main()
