#!/usr/bin/env python3
"""The economics of batching: agreement cost dilutes with load (Figure 7).

Atomic broadcast is equivalent to consensus, yet the paper shows a
burst of 1000 messages needs only ~2 agreements: a consensus started
for the first message batches everything that arrives while it runs.
This example sweeps burst sizes and prints the fraction of all
(reliable + echo) broadcasts that the agreement task consumed -- from
~92% at k=4 down to a few percent at k=1000.

Run with:  python examples/agreement_dilution.py
"""

from repro.eval.atomic_burst import run_burst

BURSTS = (4, 8, 16, 32, 64, 125, 250, 500, 1000)


def main() -> None:
    print("burst size -> agreement broadcasts / total broadcasts (10-byte messages)\n")
    print(f"{'k':>6}{'agreements':>12}{'agr bcasts':>12}{'total':>8}{'cost':>8}")
    for burst in BURSTS:
        r = run_burst(burst, 10, "failure-free", seed=5)
        bar = "#" * int(r.agreement_cost * 40)
        print(
            f"{burst:>6}{r.agreements:>12}{r.agreement_broadcasts:>12}"
            f"{r.total_broadcasts:>8}{r.agreement_cost:>8.1%}  {bar}"
        )
    print("\npaper anchors: 92% at k=4, 2.4% at k=1000 (Figure 7)")


if __name__ == "__main__":
    main()
