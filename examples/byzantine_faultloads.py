#!/usr/bin/env python3
"""Reproduce the paper's robustness story: three faultloads, same service.

Runs the same atomic broadcast burst under the three faultloads of
Section 4.2 -- failure-free, fail-stop, Byzantine -- and prints the
observations of Section 4.3:

- performance under attack is approximately failure-free performance;
- a crash makes things *faster* (less contention);
- every consensus decides in one round; no agreement ever lands on ⊥.

Run with:  python examples/byzantine_faultloads.py
"""

from repro.eval.atomic_burst import FAULTLOADS, run_burst

BURST = 250
MSG_BYTES = 100


def main() -> None:
    print(
        f"atomic broadcast burst: k={BURST} messages x {MSG_BYTES} B, "
        "4 processes, simulated LAN\n"
    )
    header = (
        f"{'faultload':<14}{'latency ms':>12}{'msgs/s':>9}{'agreements':>12}"
        f"{'bc rounds':>11}{'mvc ⊥':>7}"
    )
    print(header)
    results = {}
    for faultload in FAULTLOADS:
        result = run_burst(BURST, MSG_BYTES, faultload, seed=11)
        results[faultload] = result
        print(
            f"{faultload:<14}{result.latency_s * 1e3:>12.1f}"
            f"{result.throughput_msgs_s:>9.0f}{result.agreements:>12}"
            f"{result.max_bc_rounds:>11}{result.mvc_default_decisions:>7}"
        )

    free = results["failure-free"]
    stop = results["fail-stop"]
    byz = results["byzantine"]
    print()
    print(f"fail-stop speedup over failure-free: {free.latency_s / stop.latency_s:.2f}x")
    print(
        "Byzantine overhead over failure-free: "
        f"{byz.latency_s / free.latency_s - 1:+.1%}"
    )
    print(
        "every binary consensus decided in one round: "
        f"{all(r.max_bc_rounds == 1 for r in results.values())}"
    )
    print(
        "no multi-valued consensus ever decided ⊥: "
        f"{all(r.mvc_default_decisions == 0 for r in results.values())}"
    )


if __name__ == "__main__":
    main()
