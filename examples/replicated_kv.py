#!/usr/bin/env python3
"""A replicated key-value store over *real TCP sockets* -- with a traitor.

Four replicas run on localhost, connected by the authenticated TCP
transport (HMAC frames standing in for the paper's IPSec AH channel).
Replica 3 is Byzantine: its consensus layers run the paper's Section 4.2
attack (propose 0 at binary consensus, push ⊥ at multi-valued
consensus).  The three correct replicas still converge to identical
state -- the attack costs them nothing.

Run with:  python examples/replicated_kv.py
"""

import asyncio

from repro import GroupConfig, ProtocolFactory, TrustedDealer
from repro.adversary import byzantine_paper_faultload
from repro.apps import ReplicatedKvStore
from repro.transport import PeerAddress, RitasNode

BASE_PORT = 42600
N = 4
BYZANTINE_REPLICA = 3


async def main() -> None:
    config = GroupConfig(N)
    dealer = TrustedDealer(N, seed=b"examples/replicated_kv")
    addresses = [PeerAddress("127.0.0.1", BASE_PORT + pid) for pid in range(N)]

    nodes: list[RitasNode] = []
    stores: list[ReplicatedKvStore] = []
    for pid in range(N):
        factory = ProtocolFactory.default()
        if pid == BYZANTINE_REPLICA:
            factory = byzantine_paper_faultload(factory)
        node = RitasNode(
            config, pid, addresses, dealer.keystore_for(pid), factory=factory
        )
        await node.start()
        nodes.append(node)
        stores.append(ReplicatedKvStore(node.stack.create("ab", ("kv",))))

    print(f"{N} replicas up on 127.0.0.1:{BASE_PORT}..{BASE_PORT + N - 1}")
    print(f"replica {BYZANTINE_REPLICA} is Byzantine (Section 4.2 faultload)\n")

    stores[0].put("motd", b"replicated hello")
    stores[1].put("answer", b"42")
    stores[2].cas("answer", b"42", b"still 42")
    stores[0].delete("motd")

    correct = [pid for pid in range(N) if pid != BYZANTINE_REPLICA]
    expected_log = 4

    async def converged() -> bool:
        return all(len(stores[pid].rsm.applied) >= expected_log for pid in correct)

    for _ in range(200):
        if await converged():
            break
        await asyncio.sleep(0.05)
    else:
        raise TimeoutError("replicas did not converge")

    for pid in correct:
        store = stores[pid]
        print(
            f"replica {pid}: keys={store.keys()} "
            f"answer={store.get('answer')!r} digest={store.state_digest().hex()[:16]}"
        )
    digests = {stores[pid].state_digest() for pid in correct}
    print(f"\ncorrect replicas agree on state: {len(digests) == 1}")

    stats = nodes[correct[0]].stack.stats
    print(
        f"binary consensus rounds used: "
        f"{sorted(r for (p, r) in stats.consensus_rounds if p == 'bc')} "
        f"(the attack never forced a second round)"
    )
    for node in nodes:
        await node.close()


if __name__ == "__main__":
    asyncio.run(main())
