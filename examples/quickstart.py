#!/usr/bin/env python3
"""Quickstart: a tour of the RITAS stack on a simulated 4-process LAN.

Runs, bottom-up, one instance of every protocol in the stack (Figure 1
of the paper) and prints what each one guarantees.  Everything below
tolerates one arbitrarily malicious process out of four, with no
synchrony assumptions, no signatures and no leader.

Run with:  python examples/quickstart.py
"""

from repro import LanSimulation


def banner(title: str) -> None:
    print(f"\n=== {title} ===")


def main() -> None:
    n = 4
    print(f"Simulated LAN: {n} processes, tolerating f = {(n - 1) // 3} Byzantine")

    # -- reliable broadcast ---------------------------------------------------
    banner("Reliable broadcast (Bracha): all-or-nothing delivery")
    sim = LanSimulation(n=n, seed=1)
    deliveries: list[tuple[int, bytes]] = []
    for pid, stack in enumerate(sim.stacks):
        rb = stack.create("rb", ("hello",), sender=0)
        rb.on_deliver = lambda _i, value, pid=pid: deliveries.append((pid, value))
    sim.stacks[0].instance_at(("hello",)).broadcast(b"hello, group")
    sim.run(until=lambda: len(deliveries) == n)
    for pid, value in deliveries:
        print(f"  p{pid} delivered {value!r}")
    print(f"  latency: {sim.now * 1e3:.2f} ms simulated")

    # -- binary consensus -------------------------------------------------------
    banner("Randomized binary consensus: agree on a bit, no timeouts")
    sim = LanSimulation(n=n, seed=2)
    decisions: list[int | None] = [None] * n
    for pid, stack in enumerate(sim.stacks):
        bc = stack.create("bc", ("vote",))
        bc.on_deliver = lambda _i, bit, pid=pid: decisions.__setitem__(pid, bit)
    proposals = [1, 1, 0, 1]  # mixed proposals
    for pid, stack in enumerate(sim.stacks):
        stack.instance_at(("vote",)).propose(proposals[pid])
    sim.run(until=lambda: all(d is not None for d in decisions))
    bc0 = sim.stacks[0].instance_at(("vote",))
    print(f"  proposals {proposals} -> decisions {decisions}")
    print(f"  decided in round {bc0.decision_round} ({sim.now * 1e3:.2f} ms)")

    # -- multi-valued consensus ---------------------------------------------------
    banner("Multi-valued consensus: agree on arbitrary values")
    sim = LanSimulation(n=n, seed=3)
    values: list[bytes | None] = [None] * n
    for pid, stack in enumerate(sim.stacks):
        mvc = stack.create("mvc", ("config",))
        mvc.on_deliver = lambda _i, v, pid=pid: values.__setitem__(pid, v)
    for pid, stack in enumerate(sim.stacks):
        stack.instance_at(("config",)).propose(b"leader-free rules")
    sim.run(until=lambda: all(v is not None for v in values))
    print(f"  all decided: {values[0]!r}  ({sim.now * 1e3:.2f} ms)")

    # -- atomic broadcast -----------------------------------------------------------
    banner("Atomic broadcast: total order for everyone")
    sim = LanSimulation(n=n, seed=4)
    orders: list[list[tuple[int, int]]] = [[] for _ in range(n)]
    for pid, stack in enumerate(sim.stacks):
        ab = stack.create("ab", ("log",))
        ab.on_deliver = lambda _i, d, pid=pid: orders[pid].append((d.sender, d.rbid))
    for pid, stack in enumerate(sim.stacks):
        for k in range(2):
            stack.instance_at(("log",)).broadcast(f"entry {pid}.{k}".encode())
    total = 2 * n
    sim.run(until=lambda: all(len(order) == total for order in orders))
    identical = all(order == orders[0] for order in orders)
    print(f"  {total} messages delivered, identical order at all processes: {identical}")
    print(f"  order: {orders[0]}")
    print(f"  burst latency: {sim.now * 1e3:.2f} ms simulated")


if __name__ == "__main__":
    main()
